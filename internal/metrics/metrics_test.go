package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMDescPerSec(t *testing.T) {
	// 10k descriptors over 100k cycles of 1.25 ns = 125 us → 80 Mdesc/s.
	got := MDescPerSec(10000, 100000, 1250)
	if math.Abs(got-80) > 1e-9 {
		t.Fatalf("MDescPerSec = %v, want 80", got)
	}
	if MDescPerSec(1, 0, 1250) != 0 {
		t.Fatal("zero cycles must yield 0")
	}
}

func TestGbpsAtMinPacket(t *testing.T) {
	// §V-B inverse check: 59.52 Mpps at 12-byte IFG ≈ 40 Gbps.
	got := GbpsAtMinPacket(59.52, 12)
	if math.Abs(got-40) > 0.01 {
		t.Fatalf("GbpsAtMinPacket(59.52) = %v, want ~40", got)
	}
	// The paper's §V-B claim: 94.36 Mdesc/s → >50 Gbps.
	if g := GbpsAtMinPacket(94.36, 12); g <= 50 {
		t.Fatalf("94.36 Mpps = %v Gbps, want > 50", g)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 200, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 5000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-877.67) > 0.01 {
		t.Fatalf("Mean = %v", got)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("median bound = %d, want 100", q)
	}
	if q := h.Quantile(1.0); q != 5000 {
		t.Fatalf("p100 = %d, want observed max 5000", q)
	}
}

func TestHistogramEmptyAndValidation(t *testing.T) {
	h := NewHistogram([]int64{1, 2})
	if h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]int64{5, 5})
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table II(B)", "Miss rate", "Proc. rate (Mdesc/s)", "Paper")
	tbl.AddRowf("100%", 46.31, 46.90)
	tbl.AddRowf("0%", 97.12, 96.92)
	out := tbl.String()
	for _, want := range []string{"Table II(B)", "Miss rate", "46.31", "96.92", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}
