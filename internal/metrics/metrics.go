// Package metrics provides the measurement and reporting utilities the
// bench harness uses: throughput conversion between simulated cycles and
// the paper's Mdesc/s unit, simple histograms for latency distributions,
// and a text table renderer that prints paper-style result tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// MDescPerSec converts a descriptor count processed over elapsed simulated
// cycles (of tCKps picoseconds each) to the paper's million-descriptors-
// per-second unit.
func MDescPerSec(descriptors int64, cycles int64, tCKps int64) float64 {
	if cycles <= 0 || tCKps <= 0 {
		return 0
	}
	seconds := float64(cycles) * float64(tCKps) * 1e-12
	return float64(descriptors) / seconds / 1e6
}

// GbpsAtMinPacket converts a packet rate in Mpps to the Ethernet
// throughput it sustains at minimum packet size (72-byte Layer-1 footprint
// plus the interframe gap), the conversion of §V-B.
func GbpsAtMinPacket(mpps float64, ifgBytes int) float64 {
	return mpps * 1e6 * float64((72+ifgBytes)*8) / 1e9
}

// Histogram is a fixed-bucket latency histogram over int64 samples.
type Histogram struct {
	bounds []int64 // ascending upper bounds; last bucket is overflow
	counts []int64
	total  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (an overflow bucket is added automatically).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) from the
// bucket boundaries; the overflow bucket reports the observed max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Table renders paper-style fixed-width text tables.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are printed verbatim.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells, alternating format/args pairs
// is unnecessary — each argument is rendered with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}
