package trace

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/trafficgen"
)

func sampleRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			Tuple:     trafficgen.Flow(uint64(i % 50)),
			WireLen:   uint16(64 + i%1400),
			TimeNanos: uint64(i) * 672, // ~minimum-size packet spacing at 10G
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords(200)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 200 {
		t.Fatalf("writer count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("after last record: %v, want EOF", err)
	}
	if r.Count() != 200 {
		t.Fatalf("reader count = %d", r.Count())
	}
}

func TestRoundTripIPv6(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{
		Tuple: packet.FiveTuple{
			Src:     netip.MustParseAddr("2001:db8::1"),
			Dst:     netip.MustParseAddr("2001:db8::2"),
			SrcPort: 4000,
			DstPort: 53,
			Proto:   packet.ProtoUDP,
		},
		WireLen:   90,
		TimeNanos: 5,
	}
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("got %+v, want %+v", got, rec)
	}
}

func TestRejectsInvalidTuple(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{}); err == nil {
		t.Fatal("invalid tuple accepted")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE00"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("FLTR\xFF\x00"))); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("FL"))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(sampleRecords(1)[0])
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record read successfully")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(srcs, dsts [][4]byte, ports []uint16) bool {
		n := len(srcs)
		if len(dsts) < n {
			n = len(dsts)
		}
		if len(ports) < n {
			n = len(ports)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		var recs []Record
		for i := 0; i < n; i++ {
			rec := Record{
				Tuple: packet.FiveTuple{
					Src:     netip.AddrFrom4(srcs[i]),
					Dst:     netip.AddrFrom4(dsts[i]),
					SrcPort: ports[i],
					DstPort: ports[n-1-i],
					Proto:   packet.ProtoTCP,
				},
				WireLen: uint16(60 + i),
			}
			if err := w.Write(rec); err != nil {
				return false
			}
			recs = append(recs, rec)
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := r.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err = r.Read()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzerCurveAndSummary(t *testing.T) {
	a, err := NewAnalyzer([]int64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	// 100 packets over 20 flows, 5 packets each.
	for i := 0; i < 100; i++ {
		a.Add(Record{Tuple: trafficgen.Flow(uint64(i % 20)), WireLen: 100})
	}
	s := a.Summary(5)
	if s.Packets != 100 || s.Distinct != 20 || s.Bytes != 10000 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Curve) != 2 {
		t.Fatalf("curve has %d points, want 2", len(s.Curve))
	}
	if s.Curve[0].Packets != 10 || s.Curve[0].Distinct != 10 || s.Curve[0].Ratio != 1.0 {
		t.Fatalf("curve[0] = %+v (first 10 packets are all-new flows)", s.Curve[0])
	}
	if s.Curve[1].Ratio != 0.2 {
		t.Fatalf("curve[1].Ratio = %v, want 0.2", s.Curve[1].Ratio)
	}
	if len(s.TopShares) != 5 {
		t.Fatalf("TopShares has %d entries", len(s.TopShares))
	}
	for _, share := range s.TopShares {
		if share != 0.05 {
			t.Fatalf("uniform flows: share = %v, want 0.05", share)
		}
	}
}

func TestAnalyzerChecksCheckpoints(t *testing.T) {
	if _, err := NewAnalyzer([]int64{100, 50}); err == nil {
		t.Fatal("descending checkpoints accepted")
	}
}

func TestAnalyzerProtoBreakdown(t *testing.T) {
	a, _ := NewAnalyzer(nil)
	tcp := trafficgen.Flow(0)
	for i := 0; i < 7; i++ {
		a.Add(Record{Tuple: tcp, WireLen: 64})
	}
	s := a.Summary(0)
	if s.ByProto[tcp.Proto] != 7 {
		t.Fatalf("ByProto = %v", s.ByProto)
	}
}
