package trace

import (
	"fmt"
	"sort"

	"repro/internal/packet"
)

// CurvePoint is one point of the Fig. 6 analysis: after Packets packets,
// Distinct flows have been seen, a ratio of Ratio.
type CurvePoint struct {
	Packets  int64
	Distinct int64
	Ratio    float64
}

// Summary aggregates a trace's flow-level statistics.
type Summary struct {
	Packets   int64
	Bytes     int64
	Distinct  int64
	Curve     []CurvePoint // at the requested checkpoints
	TopShares []float64    // traffic share of the top-N flows, descending
	ByProto   map[uint8]int64
}

// Analyzer computes a Summary incrementally, so multi-million-packet
// traces stream through without buffering.
type Analyzer struct {
	spec        packet.TupleSpec
	checkpoints []int64
	next        int

	packets int64
	bytes   int64
	counts  map[string]int64
	byProto map[uint8]int64
	curve   []CurvePoint
}

// NewAnalyzer returns an analyzer that records curve points at the given
// ascending packet-count checkpoints.
func NewAnalyzer(checkpoints []int64) (*Analyzer, error) {
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return nil, fmt.Errorf("trace: checkpoints must be ascending, got %v", checkpoints)
		}
	}
	return &Analyzer{
		spec:        packet.FiveTupleSpec(),
		checkpoints: checkpoints,
		counts:      make(map[string]int64),
		byProto:     make(map[uint8]int64),
	}, nil
}

// Add feeds one record.
func (a *Analyzer) Add(r Record) {
	a.packets++
	a.bytes += int64(r.WireLen)
	a.counts[string(a.spec.Key(r.Tuple))]++
	a.byProto[r.Tuple.Proto]++
	if a.next < len(a.checkpoints) && a.packets == a.checkpoints[a.next] {
		a.curve = append(a.curve, CurvePoint{
			Packets:  a.packets,
			Distinct: int64(len(a.counts)),
			Ratio:    float64(len(a.counts)) / float64(a.packets),
		})
		a.next++
	}
}

// Summary finalises the analysis, reporting the top-N flow shares.
func (a *Analyzer) Summary(topN int) Summary {
	s := Summary{
		Packets:  a.packets,
		Bytes:    a.bytes,
		Distinct: int64(len(a.counts)),
		Curve:    append([]CurvePoint(nil), a.curve...),
		ByProto:  a.byProto,
	}
	if topN > 0 && a.packets > 0 {
		all := make([]int64, 0, len(a.counts))
		for _, c := range a.counts {
			all = append(all, c)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
		if topN > len(all) {
			topN = len(all)
		}
		for _, c := range all[:topN] {
			s.TopShares = append(s.TopShares, float64(c)/float64(a.packets))
		}
	}
	return s
}
