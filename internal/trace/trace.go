// Package trace defines a compact binary format for packet-descriptor
// traces plus reader/writer and summary statistics. Traces decouple
// workload generation from experiments: flowgen writes them, flowanalyze
// and the benches replay them, and Stats reproduces the distinct-flow
// analysis of Fig. 6 on any trace file.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"repro/internal/packet"
)

// Record is one traced packet: its flow tuple, wire length, and the
// nanosecond offset from the start of the trace.
type Record struct {
	Tuple     packet.FiveTuple
	WireLen   uint16
	TimeNanos uint64
}

// Format constants.
const (
	magic   = "FLTR"
	version = 1

	famIPv4 = 4
	famIPv6 = 6
)

// ErrBadMagic reports a stream that is not a trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// Writer serialises records onto an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count int64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], version)
	if _, err := bw.Write(ver[:]); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	ft := r.Tuple
	if !ft.Valid() {
		return fmt.Errorf("trace: invalid tuple %v", ft)
	}
	var buf [64]byte
	n := 0
	if ft.IsIPv4() {
		buf[n] = famIPv4
		n++
		src, dst := ft.Src.As4(), ft.Dst.As4()
		n += copy(buf[n:], src[:])
		n += copy(buf[n:], dst[:])
	} else {
		buf[n] = famIPv6
		n++
		src, dst := ft.Src.As16(), ft.Dst.As16()
		n += copy(buf[n:], src[:])
		n += copy(buf[n:], dst[:])
	}
	binary.LittleEndian.PutUint16(buf[n:], ft.SrcPort)
	n += 2
	binary.LittleEndian.PutUint16(buf[n:], ft.DstPort)
	n += 2
	buf[n] = ft.Proto
	n++
	binary.LittleEndian.PutUint16(buf[n:], r.WireLen)
	n += 2
	binary.LittleEndian.PutUint64(buf[n:], r.TimeNanos)
	n += 8
	if _, err := w.w.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count returns the records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader deserialises records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	count int64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 6)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", v, version)
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Read() (Record, error) {
	var rec Record
	fam, err := r.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("trace: reading record %d: %w", r.count, err)
	}
	var addrLen int
	switch fam {
	case famIPv4:
		addrLen = 4
	case famIPv6:
		addrLen = 16
	default:
		return rec, fmt.Errorf("trace: record %d has unknown address family %d", r.count, fam)
	}
	buf := make([]byte, 2*addrLen+2+2+1+2+8)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return rec, fmt.Errorf("trace: record %d truncated: %w", r.count, err)
	}
	n := 0
	if fam == famIPv4 {
		rec.Tuple.Src = netip.AddrFrom4([4]byte(buf[0:4]))
		rec.Tuple.Dst = netip.AddrFrom4([4]byte(buf[4:8]))
		n = 8
	} else {
		rec.Tuple.Src = netip.AddrFrom16([16]byte(buf[0:16]))
		rec.Tuple.Dst = netip.AddrFrom16([16]byte(buf[16:32]))
		n = 32
	}
	rec.Tuple.SrcPort = binary.LittleEndian.Uint16(buf[n:])
	n += 2
	rec.Tuple.DstPort = binary.LittleEndian.Uint16(buf[n:])
	n += 2
	rec.Tuple.Proto = buf[n]
	n++
	rec.WireLen = binary.LittleEndian.Uint16(buf[n:])
	n += 2
	rec.TimeNanos = binary.LittleEndian.Uint64(buf[n:])
	r.count++
	return rec, nil
}

// Count returns the records read so far.
func (r *Reader) Count() int64 { return r.count }
