package baseline

import (
	"bytes"
	"fmt"

	"repro/internal/hashfn"
)

// Cuckoo is two-function cuckoo hashing after Thinh et al. [7]: a key
// lives in one of its two candidate buckets; insertion may relocate
// ("kick out") resident keys along an eviction chain. Lookup is a
// guaranteed two probes, but insertion time is nondeterministic — the
// drawback the paper cites, which the stats here quantify.
type Cuckoo struct {
	pair    hashfn.Pair
	buckets int
	slots   int
	keyLen  int
	maxKick int

	keys   [2][]byte
	used   [2][]bool
	count  int
	probes int64

	// Relocations counts kick-out moves over the table lifetime;
	// MaxChain records the longest single-insert eviction chain —
	// the nondeterministic build-time behaviour quantified for the
	// baseline comparison.
	Relocations int64
	MaxChain    int
}

// NewCuckoo builds a cuckoo table. maxKick bounds the eviction chain; an
// insert that exceeds it fails (a full rebuild would be required, which
// hardware cannot do at line rate).
func NewCuckoo(pair hashfn.Pair, buckets, slots, keyLen, maxKick int) (*Cuckoo, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: cuckoo requires two hash functions")
	}
	if maxKick <= 0 {
		return nil, fmt.Errorf("baseline: cuckoo maxKick must be positive, got %d", maxKick)
	}
	c := &Cuckoo{pair: pair, buckets: buckets, slots: slots, keyLen: keyLen, maxKick: maxKick}
	for i := range c.keys {
		c.keys[i] = make([]byte, buckets*slots*keyLen)
		c.used[i] = make([]bool, buckets*slots)
	}
	return c, nil
}

func (c *Cuckoo) slotKey(table, bucket, slot int) []byte {
	base := (bucket*c.slots + slot) * c.keyLen
	return c.keys[table][base : base+c.keyLen]
}

func (c *Cuckoo) id(table, bucket, slot int) uint64 {
	perTable := c.buckets * c.slots
	return uint64(table*perTable + bucket*c.slots + slot)
}

func (c *Cuckoo) bucketOf(table int, key []byte) int {
	if table == 0 {
		return c.pair.Index1(key, c.buckets)
	}
	return c.pair.Index2(key, c.buckets)
}

func (c *Cuckoo) checkKey(key []byte) {
	if len(key) != c.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), c.keyLen))
	}
}

// Lookup implements LookupTable: exactly two bucket probes ("a constant
// O(1) lookup time ... as only two locations need to be searched").
func (c *Cuckoo) Lookup(key []byte) (uint64, bool) {
	c.checkKey(key)
	for table := 0; table < 2; table++ {
		c.probes++
		b := c.bucketOf(table, key)
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				return c.id(table, b, slot), true
			}
		}
	}
	return 0, false
}

// Insert implements LookupTable with kick-out relocation.
func (c *Cuckoo) Insert(key []byte) (uint64, error) {
	if id, ok := c.Lookup(key); ok {
		return id, nil
	}
	cur := append([]byte(nil), key...)
	table := 0
	chain := 0
	var firstID uint64
	first := true
	for kick := 0; kick <= c.maxKick; kick++ {
		b := c.bucketOf(table, cur)
		// Free slot in the candidate bucket?
		for slot := 0; slot < c.slots; slot++ {
			if !c.used[table][b*c.slots+slot] {
				copy(c.slotKey(table, b, slot), cur)
				c.used[table][b*c.slots+slot] = true
				c.count++
				c.probes++
				if chain > c.MaxChain {
					c.MaxChain = chain
				}
				if first {
					return c.id(table, b, slot), nil
				}
				return firstID, nil
			}
		}
		// Kick out the resident of a deterministic victim slot; rotate by
		// chain depth so repeated kicks in one bucket vary the victim.
		victim := chain % c.slots
		evicted := append([]byte(nil), c.slotKey(table, b, victim)...)
		copy(c.slotKey(table, b, victim), cur)
		c.probes += 2 // read victim + write new
		c.Relocations++
		chain++
		if first {
			firstID = c.id(table, b, victim)
			first = false
		}
		cur = evicted
		table = 1 - table
	}
	// The chain placed the new key but left its final evictee homeless
	// (net stored count unchanged) — the nondeterministic-build failure
	// mode the paper cites against cuckoo hashing. Hardware cannot rebuild
	// at line rate, so the loss is surfaced as an insert error.
	if chain > c.MaxChain {
		c.MaxChain = chain
	}
	return 0, fmt.Errorf("baseline: cuckoo eviction chain exceeded %d (homeless key %x): %w",
		c.maxKick, cur, ErrTableFull)
}

// Delete implements LookupTable.
func (c *Cuckoo) Delete(key []byte) bool {
	c.checkKey(key)
	for table := 0; table < 2; table++ {
		c.probes++
		b := c.bucketOf(table, key)
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				c.used[table][b*c.slots+slot] = false
				c.count--
				return true
			}
		}
	}
	return false
}

// Len implements LookupTable.
func (c *Cuckoo) Len() int { return c.count }

// Probes implements LookupTable.
func (c *Cuckoo) Probes() int64 { return c.probes }

// Name implements LookupTable.
func (c *Cuckoo) Name() string { return "cuckoo" }
