package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// Cuckoo is two-function cuckoo hashing after Thinh et al. [7]: a key
// lives in one of its two candidate buckets; insertion may relocate
// ("kick out") resident keys along an eviction chain. Lookup is a
// guaranteed two probes, but insertion time is nondeterministic — the
// drawback the paper cites, which the stats here quantify.
type Cuckoo struct {
	pair    hashfn.Pair
	buckets int
	slots   int
	keyLen  int
	maxKick int

	keys [2][]byte
	used [2][]bool
	// hashw caches both full hash words per slot (16 bytes/slot), written
	// at every placement: kick-chain evictions derive the victim's
	// alternate bucket from the cache instead of rehashing its key bytes,
	// so a whole eviction chain performs zero hash computations.
	hashw  [2][]uint64 // per table: slots × {H1 word, H2 word}
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock

	// relocate, when set (table.RelocatingBackend), receives each
	// insert's resident moves in chain order; moveBuf stages them
	// (retained on the struct, so steady-state inserts never allocate
	// for it).
	relocate func(moves [][2]uint64)
	moveBuf  [][2]uint64

	// Relocations counts kick-out moves over the table lifetime;
	// MaxChain records the longest single-insert eviction chain —
	// the nondeterministic build-time behaviour quantified for the
	// baseline comparison.
	Relocations int64
	MaxChain    int
}

// NewCuckoo builds a cuckoo table. maxKick bounds the eviction chain; an
// insert that exceeds it fails (a full rebuild would be required, which
// hardware cannot do at line rate).
func NewCuckoo(pair hashfn.Pair, buckets, slots, keyLen, maxKick int) (*Cuckoo, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: cuckoo requires two hash functions")
	}
	if maxKick <= 0 {
		return nil, fmt.Errorf("baseline: cuckoo maxKick must be positive, got %d", maxKick)
	}
	c := &Cuckoo{pair: pair, buckets: buckets, slots: slots, keyLen: keyLen, maxKick: maxKick}
	for i := range c.keys {
		c.keys[i] = make([]byte, buckets*slots*keyLen)
		c.used[i] = make([]bool, buckets*slots)
		c.hashw[i] = make([]uint64, buckets*slots*2)
	}
	return c, nil
}

func (c *Cuckoo) slotKey(table, bucket, slot int) []byte {
	base := (bucket*c.slots + slot) * c.keyLen
	return c.keys[table][base : base+c.keyLen]
}

func (c *Cuckoo) id(table, bucket, slot int) uint64 {
	perTable := c.buckets * c.slots
	return uint64(table*perTable + bucket*c.slots + slot)
}

// slotWords returns the cached hash words of (table, bucket, slot).
func (c *Cuckoo) slotWords(table, bucket, slot int) [2]uint64 {
	base := (bucket*c.slots + slot) * 2
	return [2]uint64{c.hashw[table][base], c.hashw[table][base+1]}
}

// setSlotWords stores the hash words of the key just placed in
// (table, bucket, slot).
func (c *Cuckoo) setSlotWords(table, bucket, slot int, w [2]uint64) {
	base := (bucket*c.slots + slot) * 2
	c.hashw[table][base], c.hashw[table][base+1] = w[0], w[1]
}

func (c *Cuckoo) checkKey(key []byte) {
	if len(key) != c.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), c.keyLen))
	}
}

// lookupAt scans the two candidate buckets given by b1/b2 for key. Probes
// are charged in one atomic add at exit (1 for a first-bucket hit, else
// 2), keeping the read path to a single shared-counter operation.
func (c *Cuckoo) lookupAt(key []byte, b1, b2 int) (uint64, bool) {
	buckets := [2]int{b1, b2}
	for table := 0; table < 2; table++ {
		b := buckets[table]
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				c.probes.Add(int64(table) + 1)
				return c.id(table, b, slot), true
			}
		}
	}
	c.probes.Add(2)
	return 0, false
}

// Lookup implements LookupTable: exactly two bucket probes ("a constant
// O(1) lookup time ... as only two locations need to be searched").
func (c *Cuckoo) Lookup(key []byte) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, c.pair.Index1(key, c.buckets), c.pair.Index2(key, c.buckets))
}

// LookupHashed implements the hashed fast path (table.HashedBackend): both
// candidate buckets come from the caller's precomputed hashes.
func (c *Cuckoo) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, hashfn.Reduce(kh.H1, c.buckets), hashfn.Reduce(kh.H2, c.buckets))
}

// Insert implements LookupTable with kick-out relocation. The key is
// hashed exactly once; everything after — the duplicate pre-check, the
// placement and any kick chain — runs on retained or cached hash words.
func (c *Cuckoo) Insert(key []byte) (uint64, error) {
	c.checkKey(key)
	return c.insertAt(key, [2]uint64{c.pair.H1.Hash(key), c.pair.H2.Hash(key)})
}

// InsertHashed implements the hashed fast path: with the per-slot hash
// cache the whole insert — including keys evicted along the kick chain,
// whose words are read back from the cache — performs zero hash
// computations.
func (c *Cuckoo) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	c.checkKey(key)
	return c.insertAt(key, [2]uint64{kh.H1, kh.H2})
}

// recordMove stages one resident relocation for the hook, preserving
// chain order (the order consumers' hand-over-hand replay depends on; see
// table.RelocatingBackend).
func (c *Cuckoo) recordMove(from, to uint64) {
	if c.relocate != nil {
		c.moveBuf = append(c.moveBuf, [2]uint64{from, to})
	}
}

// flushMoves delivers the staged chain to the relocation hook in one call
// and resets the staging buffer.
func (c *Cuckoo) flushMoves() {
	if c.relocate != nil && len(c.moveBuf) > 0 {
		c.relocate(c.moveBuf)
	}
	c.moveBuf = c.moveBuf[:0]
}

// insertAt implements Insert with the key's full hash words already
// derived: w[0]/w[1] index table 0/1. The duplicate pre-check, the
// placement and every kick-chain hop reduce words — the key's own or a
// victim's cached pair — so no insert path rehashes any key bytes.
//
// The new key is tracked through the chain: long chains can evict it from
// its first landing slot (the path may revisit slots — the reason maxKick
// exists), so the returned ID is its final location, its own hops are
// excluded from the relocation moves (it has no per-slot metadata to
// carry yet), and the moves list reaches the hook in chain order.
func (c *Cuckoo) insertAt(key []byte, w [2]uint64) (uint64, error) {
	b1, b2 := hashfn.Reduce(w[0], c.buckets), hashfn.Reduce(w[1], c.buckets)
	if id, ok := c.lookupAt(key, b1, b2); ok {
		return id, nil
	}
	// cur borrows the caller's key until the first eviction forces a copy:
	// the common no-kick insert then allocates nothing (the writer-path
	// zero-alloc bound counts on it), and the arena copy below never
	// aliases the borrowed bytes. curW rides along — it is the cache
	// content for cur's eventual slot.
	cur := key
	curW := w
	curIsNew := true     // cur is the inserted key, not a relocated resident
	var curOrigin uint64 // slot cur was evicted from (valid when !curIsNew)
	var newID uint64     // the inserted key's slot (valid when newResident)
	newResident := false
	table := 0
	chain := 0
	for kick := 0; kick <= c.maxKick; kick++ {
		b := hashfn.Reduce(curW[table], c.buckets)
		// Free slot in the candidate bucket?
		for slot := 0; slot < c.slots; slot++ {
			if !c.used[table][b*c.slots+slot] {
				copy(c.slotKey(table, b, slot), cur)
				c.setSlotWords(table, b, slot, curW)
				c.used[table][b*c.slots+slot] = true
				c.count++
				c.probes.Add(1)
				if chain > c.MaxChain {
					c.MaxChain = chain
				}
				if curIsNew {
					newID = c.id(table, b, slot)
				} else {
					c.recordMove(curOrigin, c.id(table, b, slot))
				}
				c.flushMoves()
				return newID, nil
			}
		}
		// Kick out the resident of a deterministic victim slot; rotate by
		// chain depth so repeated kicks in one bucket vary the victim.
		// The victim's cached words leave with it — its next hop reduces
		// them instead of rehashing its key.
		victim := chain % c.slots
		victimID := c.id(table, b, victim)
		victimIsNew := newResident && victimID == newID
		victimW := c.slotWords(table, b, victim)
		evicted := append([]byte(nil), c.slotKey(table, b, victim)...)
		copy(c.slotKey(table, b, victim), cur)
		c.setSlotWords(table, b, victim, curW)
		c.probes.Add(2) // read victim + write new
		c.Relocations++
		chain++
		if curIsNew {
			newID = victimID
			newResident = true
		} else {
			c.recordMove(curOrigin, victimID)
		}
		cur, curW, curOrigin, curIsNew = evicted, victimW, victimID, victimIsNew
		if victimIsNew {
			newResident = false // the chain kicked the new key out again
		}
		table = 1 - table
	}
	// Chain exceeded maxKick: one key is homeless — the nondeterministic
	// build failure the paper cites against cuckoo hashing; hardware
	// cannot rebuild at line rate, so the loss surfaces as an insert
	// error. Usually the homeless key is the final evictee and the new
	// key stays resident despite the error (the degraded-residency
	// semantics the differential tests pin); with expiry enabled such a
	// resident-but-failed key keeps its slot's previous timestamps until
	// it ages out — an accepted blemish of a regime the lifecycle layer
	// exists to keep tables out of. Staged moves still fire: every other
	// resident did move.
	if chain > c.MaxChain {
		c.MaxChain = chain
	}
	c.flushMoves()
	return 0, fmt.Errorf("baseline: cuckoo eviction chain exceeded %d (homeless key %x): %w",
		c.maxKick, cur, ErrTableFull)
}

// deleteAt removes key from whichever of its candidate buckets holds it.
func (c *Cuckoo) deleteAt(key []byte, b1, b2 int) bool {
	buckets := [2]int{b1, b2}
	for table := 0; table < 2; table++ {
		b := buckets[table]
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				c.used[table][b*c.slots+slot] = false
				c.count--
				c.probes.Add(int64(table) + 1)
				return true
			}
		}
	}
	c.probes.Add(2)
	return false
}

// Delete implements LookupTable.
func (c *Cuckoo) Delete(key []byte) bool {
	c.checkKey(key)
	return c.deleteAt(key, c.pair.Index1(key, c.buckets), c.pair.Index2(key, c.buckets))
}

// DeleteHashed implements the hashed fast path.
func (c *Cuckoo) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	c.checkKey(key)
	return c.deleteAt(key, hashfn.Reduce(kh.H1, c.buckets), hashfn.Reduce(kh.H2, c.buckets))
}

// Len implements LookupTable.
func (c *Cuckoo) Len() int { return c.count }

// Probes implements LookupTable.
func (c *Cuckoo) Probes() int64 { return c.probes.Load() }

// Name implements LookupTable.
func (c *Cuckoo) Name() string { return "cuckoo" }
