package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/table/slotarr"
)

// Cuckoo is two-function cuckoo hashing after Thinh et al. [7]: a key
// lives in one of its two candidate buckets; insertion may relocate
// ("kick out") resident keys along an eviction chain. Lookup is a
// guaranteed two probes, but insertion time is nondeterministic — the
// drawback the paper cites, which the stats here quantify.
type Cuckoo struct {
	pair    hashfn.Pair
	buckets int
	slots   int
	keyLen  int
	maxKick int

	// stores holds each table's slot arena (inline keys + fingerprint
	// tags); table t's tags derive from hash word t, the word that indexes
	// its buckets.
	stores [2]*slotarr.Store
	// hashw caches both full hash words per slot (16 bytes/slot), written
	// at every placement: kick-chain evictions derive the victim's
	// alternate bucket (and its tag) from the cache instead of rehashing
	// its key bytes, so a whole eviction chain performs zero hash
	// computations.
	hashw  [2][]uint64 // per table: slots × {H1 word, H2 word}
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock

	// kickBufs are the two retained ping-pong buffers evicted keys travel
	// in along a kick chain, so steady-state chains allocate nothing; the
	// in-flight key always aliases the buffer the next eviction does not
	// write.
	kickBufs [2][]byte

	// relocate, when set (table.RelocatingBackend), receives each
	// insert's resident moves in chain order; moveBuf stages them
	// (retained on the struct, so steady-state inserts never allocate
	// for it).
	relocate func(moves [][2]uint64)
	moveBuf  [][2]uint64

	// stripeBound is the bucket count when it is a power of two (so
	// bucket = word & (buckets-1) and any dividing stripe count stays
	// congruent), else 1 — striping off. escalate, when set, is called at
	// the entry to an insert's eviction branch: from the second hop on, a
	// kick chain writes buckets derived from victims' hash words, which
	// the inserted key's stripes cannot cover (see table.StripedBackend).
	stripeBound int
	escalate    func()

	// Relocations counts kick-out moves over the table lifetime;
	// MaxChain records the longest single-insert eviction chain —
	// the nondeterministic build-time behaviour quantified for the
	// baseline comparison.
	Relocations int64
	MaxChain    int
}

// NewCuckoo builds a cuckoo table. maxKick bounds the eviction chain; an
// insert that exceeds it fails (a full rebuild would be required, which
// hardware cannot do at line rate).
func NewCuckoo(pair hashfn.Pair, buckets, slots, keyLen, maxKick int) (*Cuckoo, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: cuckoo requires two hash functions")
	}
	if maxKick <= 0 {
		return nil, fmt.Errorf("baseline: cuckoo maxKick must be positive, got %d", maxKick)
	}
	c := &Cuckoo{pair: pair, buckets: buckets, slots: slots, keyLen: keyLen, maxKick: maxKick}
	c.stripeBound = 1
	if buckets&(buckets-1) == 0 {
		c.stripeBound = buckets
	}
	for i := range c.stores {
		c.stores[i] = slotarr.New(buckets*slots, keyLen)
		c.hashw[i] = make([]uint64, buckets*slots*2)
	}
	return c, nil
}

// StripeBound implements table.StripedBackend: the bucket count when it
// is a power of two (checkGeometry does not require one, and a non-pow2
// reduction is not a low-bit fold), else 1. Cuckoo has no online grow, so
// the construction geometry is the only one.
func (c *Cuckoo) StripeBound() int { return c.stripeBound }

// SetEscalateHook implements table.StripedBackend; fn fires before the
// first kick-out of an insert's eviction chain.
func (c *Cuckoo) SetEscalateHook(fn func()) { c.escalate = fn }

// id folds a table and arena offset into a slot ID (the ID layout
// concatenates the two table arenas).
func (c *Cuckoo) id(table, off int) uint64 {
	return uint64(table*c.buckets*c.slots + off)
}

// slotWords returns the cached hash words of arena offset off in table.
func (c *Cuckoo) slotWords(table, off int) [2]uint64 {
	return [2]uint64{c.hashw[table][off*2], c.hashw[table][off*2+1]}
}

// setSlotWords stores the hash words of the key just placed at arena
// offset off in table.
func (c *Cuckoo) setSlotWords(table, off int, w [2]uint64) {
	c.hashw[table][off*2], c.hashw[table][off*2+1] = w[0], w[1]
}

func (c *Cuckoo) checkKey(key []byte) {
	if len(key) != c.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), c.keyLen))
	}
}

// scanBucket finds key in bucket base..base+slots of store st, returning
// the arena offset. For bucket widths above 2 it runs the SWAR tag probe;
// at K <= 2 it compares the one or two resident keys directly — with so
// few candidates the tag word load and mask arithmetic cost more than the
// key compares they might skip (the cache-resident regression PR 5
// recorded for narrow cuckoo geometries). Both forms verify candidates in
// slot order, so results are bit-identical.
func (c *Cuckoo) scanBucket(st *slotarr.Store, base int, w uint64, key []byte) (int, bool) {
	if c.slots <= 2 {
		for i := base; i < base+c.slots; i++ {
			if st.Occupied(i) && bytes.Equal(st.Key(i), key) {
				return i, true
			}
		}
		return 0, false
	}
	if c.slots > 8 {
		return st.FindTagged(base, c.slots, slotarr.TagOf(w), key)
	}
	// The candidate loop runs in this frame over the inlinable TagMatches
	// leaf: one probe costs no function calls beyond the key compare on a
	// tag hit.
	for m := st.TagMatches(base, c.slots, slotarr.TagOf(w)); m != 0; {
		var off int
		off, m = slotarr.NextMatch(m)
		if bytes.Equal(st.Key(base+off), key) {
			return base + off, true
		}
	}
	return 0, false
}

// readAt scans the two candidate buckets derived from the key's full hash
// words (table t's bucket and tag both come from w[t]) with zero stats
// writes — the lock-free read core. The outcome token is the probe count
// the access cost model charges: 1 for a first-bucket hit, else 2.
func (c *Cuckoo) readAt(key []byte, w [2]uint64) (uint64, uint8, bool) {
	for table := 0; table < 2; table++ {
		b := hashfn.Reduce(w[table], c.buckets)
		if off, ok := c.scanBucket(c.stores[table], b*c.slots, w[table], key); ok {
			return c.id(table, off), uint8(table) + 1, true
		}
	}
	return 0, 2, false
}

// lookupAt is readAt plus the accounting: probes are charged in one
// atomic add at exit, keeping the read path to a single shared-counter
// operation.
func (c *Cuckoo) lookupAt(key []byte, w [2]uint64) (uint64, bool) {
	id, probes, ok := c.readAt(key, w)
	c.probes.Add(int64(probes))
	return id, ok
}

// Lookup implements LookupTable: exactly two bucket probes ("a constant
// O(1) lookup time ... as only two locations need to be searched").
func (c *Cuckoo) Lookup(key []byte) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, [2]uint64{c.pair.H1.Hash(key), c.pair.H2.Hash(key)})
}

// LookupHashed implements the hashed fast path (table.HashedBackend): both
// candidate buckets come from the caller's precomputed hashes.
func (c *Cuckoo) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, [2]uint64{kh.H1, kh.H2})
}

// Insert implements LookupTable with kick-out relocation. The key is
// hashed exactly once; everything after — the duplicate pre-check, the
// placement and any kick chain — runs on retained or cached hash words.
func (c *Cuckoo) Insert(key []byte) (uint64, error) {
	c.checkKey(key)
	return c.insertAt(key, [2]uint64{c.pair.H1.Hash(key), c.pair.H2.Hash(key)})
}

// InsertHashed implements the hashed fast path: with the per-slot hash
// cache the whole insert — including keys evicted along the kick chain,
// whose words are read back from the cache — performs zero hash
// computations.
func (c *Cuckoo) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	c.checkKey(key)
	return c.insertAt(key, [2]uint64{kh.H1, kh.H2})
}

// recordMove stages one resident relocation for the hook, preserving
// chain order (the order consumers' hand-over-hand replay depends on; see
// table.RelocatingBackend).
func (c *Cuckoo) recordMove(from, to uint64) {
	if c.relocate != nil {
		c.moveBuf = append(c.moveBuf, [2]uint64{from, to})
	}
}

// flushMoves delivers the staged chain to the relocation hook in one call
// and resets the staging buffer.
func (c *Cuckoo) flushMoves() {
	if c.relocate != nil && len(c.moveBuf) > 0 {
		c.relocate(c.moveBuf)
	}
	c.moveBuf = c.moveBuf[:0]
}

// insertAt implements Insert with the key's full hash words already
// derived: w[0]/w[1] index table 0/1. The duplicate pre-check, the
// placement and every kick-chain hop reduce words — the key's own or a
// victim's cached pair — so no insert path rehashes any key bytes.
//
// The new key is tracked through the chain: long chains can evict it from
// its first landing slot (the path may revisit slots — the reason maxKick
// exists), so the returned ID is its final location, its own hops are
// excluded from the relocation moves (it has no per-slot metadata to
// carry yet), and the moves list reaches the hook in chain order.
func (c *Cuckoo) insertAt(key []byte, w [2]uint64) (uint64, error) {
	if id, ok := c.lookupAt(key, w); ok {
		return id, nil
	}
	// cur borrows the caller's key until the first eviction moves it into
	// a retained kick buffer: the common no-kick insert then copies the
	// key exactly once, straight into the arena (the writer-path
	// zero-alloc bound counts on it). curW rides along — it is the cache
	// content for cur's eventual slot, and its per-table word is also the
	// slot's fingerprint tag source.
	cur := key
	curW := w
	curIsNew := true     // cur is the inserted key, not a relocated resident
	var curOrigin uint64 // slot cur was evicted from (valid when !curIsNew)
	var newID uint64     // the inserted key's slot (valid when newResident)
	newResident := false
	table := 0
	chain := 0
	bi := 0 // kickBufs ping-pong cursor
	for kick := 0; kick <= c.maxKick; kick++ {
		b := hashfn.Reduce(curW[table], c.buckets)
		st := c.stores[table]
		// Free slot in the candidate bucket?
		if off, ok := st.FindFree(b*c.slots, c.slots); ok {
			st.Set(off, slotarr.TagOf(curW[table]), cur)
			c.setSlotWords(table, off, curW)
			c.count++
			c.probes.Add(1)
			if chain > c.MaxChain {
				c.MaxChain = chain
			}
			if curIsNew {
				newID = c.id(table, off)
			} else {
				c.recordMove(curOrigin, c.id(table, off))
			}
			c.flushMoves()
			return newID, nil
		}
		// Kick out the resident of a deterministic victim slot; rotate by
		// chain depth so repeated kicks in one bucket vary the victim.
		// The victim's cached words leave with it — its next hop reduces
		// them instead of rehashing its key. The chain is about to write
		// buckets the inserted key's stripes cannot cover (every hop past
		// this one lands in a victim-derived bucket), so the write section
		// escalates to the shard-global word first; the hook is idempotent,
		// making the per-hop call free after the first.
		if c.escalate != nil {
			c.escalate()
		}
		victim := b*c.slots + chain%c.slots
		victimID := c.id(table, victim)
		victimIsNew := newResident && victimID == newID
		victimW := c.slotWords(table, victim)
		// The evicted key travels in a retained ping-pong buffer: cur
		// aliases the other buffer (or still the caller's key), so the
		// copy never clobbers the in-flight bytes and steady-state chains
		// allocate nothing once the buffers have grown.
		evicted := append(c.kickBufs[bi][:0], st.Key(victim)...)
		c.kickBufs[bi] = evicted
		bi ^= 1
		st.Set(victim, slotarr.TagOf(curW[table]), cur)
		c.setSlotWords(table, victim, curW)
		c.probes.Add(2) // read victim + write new
		c.Relocations++
		chain++
		if curIsNew {
			newID = victimID
			newResident = true
		} else {
			c.recordMove(curOrigin, victimID)
		}
		cur, curW, curOrigin, curIsNew = evicted, victimW, victimID, victimIsNew
		if victimIsNew {
			newResident = false // the chain kicked the new key out again
		}
		table = 1 - table
	}
	// Chain exceeded maxKick: one key is homeless — the nondeterministic
	// build failure the paper cites against cuckoo hashing; hardware
	// cannot rebuild at line rate, so the loss surfaces as an insert
	// error. Usually the homeless key is the final evictee and the new
	// key stays resident despite the error (the degraded-residency
	// semantics the differential tests pin); with expiry enabled such a
	// resident-but-failed key keeps its slot's previous timestamps until
	// it ages out — an accepted blemish of a regime the lifecycle layer
	// exists to keep tables out of. Staged moves still fire: every other
	// resident did move.
	if chain > c.MaxChain {
		c.MaxChain = chain
	}
	c.flushMoves()
	return 0, fmt.Errorf("baseline: cuckoo eviction chain exceeded %d (homeless key %x): %w",
		c.maxKick, cur, ErrTableFull)
}

// deleteAt removes key from whichever of its candidate buckets holds it,
// through the same scan (and K <= 2 tag skip) as the lookup path.
func (c *Cuckoo) deleteAt(key []byte, w [2]uint64) bool {
	for table := 0; table < 2; table++ {
		b := hashfn.Reduce(w[table], c.buckets)
		st := c.stores[table]
		if off, ok := c.scanBucket(st, b*c.slots, w[table], key); ok {
			st.Clear(off)
			c.count--
			c.probes.Add(int64(table) + 1)
			return true
		}
	}
	c.probes.Add(2)
	return false
}

// Delete implements LookupTable.
func (c *Cuckoo) Delete(key []byte) bool {
	c.checkKey(key)
	return c.deleteAt(key, [2]uint64{c.pair.H1.Hash(key), c.pair.H2.Hash(key)})
}

// DeleteHashed implements the hashed fast path.
func (c *Cuckoo) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	c.checkKey(key)
	return c.deleteAt(key, [2]uint64{kh.H1, kh.H2})
}

// Len implements LookupTable.
func (c *Cuckoo) Len() int { return c.count }

// Probes implements LookupTable.
func (c *Cuckoo) Probes() int64 { return c.probes.Load() }

// Name implements LookupTable.
func (c *Cuckoo) Name() string { return "cuckoo" }

// PrefetchHashed implements table.PrefetchBackend: both candidate buckets
// are touched so a batched operation's misses overlap.
func (c *Cuckoo) PrefetchHashed(kh hashfn.KeyHashes) uint64 {
	return c.stores[0].Touch(hashfn.Reduce(kh.H1, c.buckets)*c.slots) ^
		c.stores[1].Touch(hashfn.Reduce(kh.H2, c.buckets)*c.slots)
}

// ReadHashed implements table.OptimisticBackend: the outcome token is the
// probe count the scan charged (1 or 2). The scan touches only the fixed
// slot arenas and tag arrays — never the hash-word cache, which only the
// write paths read — so a racing writer can make it misread but not
// fault.
func (c *Cuckoo) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	c.checkKey(key)
	return c.readAt(key, [2]uint64{kh.H1, kh.H2})
}

// CommitReads implements table.OptimisticBackend.
func (c *Cuckoo) CommitReads(outcome uint8, n int64) {
	c.probes.Add(int64(outcome) * n)
}

// ReadLockFree implements table.OptimisticBackend: true on the inline
// slot path, false for key widths on the slotarr spill path.
func (c *Cuckoo) ReadLockFree() bool { return c.stores[0].Inline() }

// StorageBytes implements table.StorageSized: both slot arenas plus the
// per-slot hash-word cache and the retained kick buffers.
func (c *Cuckoo) StorageBytes() int64 {
	n := c.stores[0].Bytes() + c.stores[1].Bytes()
	n += int64(len(c.hashw[0])+len(c.hashw[1])) * 8
	n += int64(cap(c.kickBufs[0]) + cap(c.kickBufs[1]))
	return n
}
