package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// Cuckoo is two-function cuckoo hashing after Thinh et al. [7]: a key
// lives in one of its two candidate buckets; insertion may relocate
// ("kick out") resident keys along an eviction chain. Lookup is a
// guaranteed two probes, but insertion time is nondeterministic — the
// drawback the paper cites, which the stats here quantify.
type Cuckoo struct {
	pair    hashfn.Pair
	buckets int
	slots   int
	keyLen  int
	maxKick int

	keys   [2][]byte
	used   [2][]bool
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock

	// Relocations counts kick-out moves over the table lifetime;
	// MaxChain records the longest single-insert eviction chain —
	// the nondeterministic build-time behaviour quantified for the
	// baseline comparison.
	Relocations int64
	MaxChain    int
}

// NewCuckoo builds a cuckoo table. maxKick bounds the eviction chain; an
// insert that exceeds it fails (a full rebuild would be required, which
// hardware cannot do at line rate).
func NewCuckoo(pair hashfn.Pair, buckets, slots, keyLen, maxKick int) (*Cuckoo, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: cuckoo requires two hash functions")
	}
	if maxKick <= 0 {
		return nil, fmt.Errorf("baseline: cuckoo maxKick must be positive, got %d", maxKick)
	}
	c := &Cuckoo{pair: pair, buckets: buckets, slots: slots, keyLen: keyLen, maxKick: maxKick}
	for i := range c.keys {
		c.keys[i] = make([]byte, buckets*slots*keyLen)
		c.used[i] = make([]bool, buckets*slots)
	}
	return c, nil
}

func (c *Cuckoo) slotKey(table, bucket, slot int) []byte {
	base := (bucket*c.slots + slot) * c.keyLen
	return c.keys[table][base : base+c.keyLen]
}

func (c *Cuckoo) id(table, bucket, slot int) uint64 {
	perTable := c.buckets * c.slots
	return uint64(table*perTable + bucket*c.slots + slot)
}

func (c *Cuckoo) bucketOf(table int, key []byte) int {
	if table == 0 {
		return c.pair.Index1(key, c.buckets)
	}
	return c.pair.Index2(key, c.buckets)
}

func (c *Cuckoo) checkKey(key []byte) {
	if len(key) != c.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), c.keyLen))
	}
}

// lookupAt scans the two candidate buckets given by b1/b2 for key. Probes
// are charged in one atomic add at exit (1 for a first-bucket hit, else
// 2), keeping the read path to a single shared-counter operation.
func (c *Cuckoo) lookupAt(key []byte, b1, b2 int) (uint64, bool) {
	buckets := [2]int{b1, b2}
	for table := 0; table < 2; table++ {
		b := buckets[table]
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				c.probes.Add(int64(table) + 1)
				return c.id(table, b, slot), true
			}
		}
	}
	c.probes.Add(2)
	return 0, false
}

// Lookup implements LookupTable: exactly two bucket probes ("a constant
// O(1) lookup time ... as only two locations need to be searched").
func (c *Cuckoo) Lookup(key []byte) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, c.pair.Index1(key, c.buckets), c.pair.Index2(key, c.buckets))
}

// LookupHashed implements the hashed fast path (table.HashedBackend): both
// candidate buckets come from the caller's precomputed hashes.
func (c *Cuckoo) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	c.checkKey(key)
	return c.lookupAt(key, hashfn.Reduce(kh.H1, c.buckets), hashfn.Reduce(kh.H2, c.buckets))
}

// Insert implements LookupTable with kick-out relocation.
func (c *Cuckoo) Insert(key []byte) (uint64, error) {
	c.checkKey(key)
	b1, b2 := c.pair.Index1(key, c.buckets), c.pair.Index2(key, c.buckets)
	return c.insertAt(key, b1, b2)
}

// InsertHashed implements the hashed fast path: the inserted key itself is
// never rehashed (keys evicted along the kick chain still are — their
// hashes are not in the caller's precomputed set).
func (c *Cuckoo) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	c.checkKey(key)
	return c.insertAt(key, hashfn.Reduce(kh.H1, c.buckets), hashfn.Reduce(kh.H2, c.buckets))
}

// insertAt implements Insert with the candidate buckets of key already
// derived (b1/b2), so the duplicate pre-check and the first placement step
// reuse them instead of rehashing.
func (c *Cuckoo) insertAt(key []byte, b1, b2 int) (uint64, error) {
	if id, ok := c.lookupAt(key, b1, b2); ok {
		return id, nil
	}
	// cur borrows the caller's key until the first eviction forces a copy:
	// the common no-kick insert then allocates nothing (the writer-path
	// zero-alloc bound counts on it), and the arena copy below never
	// aliases the borrowed bytes.
	cur := key
	table := 0
	chain := 0
	var firstID uint64
	first := true
	for kick := 0; kick <= c.maxKick; kick++ {
		var b int
		switch {
		case kick == 0:
			b = b1 // cur is still the original key: bucket precomputed
		default:
			b = c.bucketOf(table, cur)
		}
		// Free slot in the candidate bucket?
		for slot := 0; slot < c.slots; slot++ {
			if !c.used[table][b*c.slots+slot] {
				copy(c.slotKey(table, b, slot), cur)
				c.used[table][b*c.slots+slot] = true
				c.count++
				c.probes.Add(1)
				if chain > c.MaxChain {
					c.MaxChain = chain
				}
				if first {
					return c.id(table, b, slot), nil
				}
				return firstID, nil
			}
		}
		// Kick out the resident of a deterministic victim slot; rotate by
		// chain depth so repeated kicks in one bucket vary the victim.
		victim := chain % c.slots
		evicted := append([]byte(nil), c.slotKey(table, b, victim)...)
		copy(c.slotKey(table, b, victim), cur)
		c.probes.Add(2) // read victim + write new
		c.Relocations++
		chain++
		if first {
			firstID = c.id(table, b, victim)
			first = false
		}
		cur = evicted
		table = 1 - table
	}
	// The chain placed the new key but left its final evictee homeless
	// (net stored count unchanged) — the nondeterministic-build failure
	// mode the paper cites against cuckoo hashing. Hardware cannot rebuild
	// at line rate, so the loss is surfaced as an insert error.
	if chain > c.MaxChain {
		c.MaxChain = chain
	}
	return 0, fmt.Errorf("baseline: cuckoo eviction chain exceeded %d (homeless key %x): %w",
		c.maxKick, cur, ErrTableFull)
}

// deleteAt removes key from whichever of its candidate buckets holds it.
func (c *Cuckoo) deleteAt(key []byte, b1, b2 int) bool {
	buckets := [2]int{b1, b2}
	for table := 0; table < 2; table++ {
		b := buckets[table]
		for slot := 0; slot < c.slots; slot++ {
			if c.used[table][b*c.slots+slot] && bytes.Equal(c.slotKey(table, b, slot), key) {
				c.used[table][b*c.slots+slot] = false
				c.count--
				c.probes.Add(int64(table) + 1)
				return true
			}
		}
	}
	c.probes.Add(2)
	return false
}

// Delete implements LookupTable.
func (c *Cuckoo) Delete(key []byte) bool {
	c.checkKey(key)
	return c.deleteAt(key, c.pair.Index1(key, c.buckets), c.pair.Index2(key, c.buckets))
}

// DeleteHashed implements the hashed fast path.
func (c *Cuckoo) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	c.checkKey(key)
	return c.deleteAt(key, hashfn.Reduce(kh.H1, c.buckets), hashfn.Reduce(kh.H2, c.buckets))
}

// Len implements LookupTable.
func (c *Cuckoo) Len() int { return c.count }

// Probes implements LookupTable.
func (c *Cuckoo) Probes() int64 { return c.probes.Load() }

// Name implements LookupTable.
func (c *Cuckoo) Name() string { return "cuckoo" }
