package baseline

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/table"
	"repro/internal/table/slotarr"
)

// dlArena is one d-left generation: the per-sub-table slot arenas plus
// their entry counts. The table holds a live arena and, mid-grow, a
// retiring one (see grow.go); counts live here so each generation's
// occupancy follows it through the swap.
type dlArena struct {
	buckets int
	stores  []*slotarr.Store // per sub-table arenas (inline keys + tags)
	counts  []int
}

// slots returns the arena's per-sub-table slot count.
func (a *dlArena) slots(k int) int { return a.buckets * k }

// DLeft is d-choice (d-left) hashing after Azar et al. [6]: d sub-tables,
// each with its own hash function; a key is placed in the least-loaded of
// its d candidate buckets, ties breaking to the leftmost sub-table.
type DLeft struct {
	hashes []hashfn.Func
	// khWords aligns each sub-table's hash function with a word of a
	// precomputed hashfn.KeyHashes (khH1/khH2), the per-sub-table hash
	// list of the hashed fast path. khNone entries rehash the key bytes.
	khWords []int8
	slots   int
	keyLen  int
	// conBuckets is the construction-time bucket count — the minimum any
	// generation will ever have (grows only enlarge), so the stripe bound
	// derives from it (see StripeBound).
	conBuckets int

	// live is the generation inserts target; old is non-nil only while a
	// grow is migrating entries out of the previous generation (grow.go).
	// Atomic pointers so the sharded layer's lock-free readers can race
	// the swap; all writes happen under the caller's exclusive lock.
	live, old atomic.Pointer[dlArena]
	probes    atomic.Int64 // atomic: lookups may run under a shared lock

	growCursor uint64
	moveBuf    [][2]uint64
	relocate   func([][2]uint64)
}

// newDLArena builds one generation's sub-table arenas.
func newDLArena(d, buckets, slots, keyLen int) *dlArena {
	a := &dlArena{
		buckets: buckets,
		stores:  make([]*slotarr.Store, d),
		counts:  make([]int, d),
	}
	for i := range a.stores {
		a.stores[i] = slotarr.New(buckets*slots, keyLen)
	}
	return a
}

// NewDLeft builds a d-left table with one sub-table per hash function. The
// hashed fast-path methods on a table built this way fall back to hashing
// (arbitrary Funcs have no KeyHashes words); use NewDLeftPair to align the
// sub-tables with a pair so precomputed hashes are consumed directly.
func NewDLeft(hashes []hashfn.Func, buckets, slots, keyLen int) (*DLeft, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if len(hashes) < 2 {
		return nil, fmt.Errorf("baseline: d-left requires at least 2 hash functions, got %d", len(hashes))
	}
	d := &DLeft{
		hashes:     hashes,
		khWords:    make([]int8, len(hashes)),
		slots:      slots,
		keyLen:     keyLen,
		conBuckets: buckets,
	}
	for i := range hashes {
		d.khWords[i] = khNone
	}
	d.live.Store(newDLArena(len(hashes), buckets, slots, keyLen))
	return d, nil
}

// NewDLeftPair builds the 2-left table over [pair.H1, pair.H2] with each
// sub-table bound to its KeyHashes word — the registry constructor, so a
// sharded d-left table hashes each key exactly once per operation.
func NewDLeftPair(pair hashfn.Pair, buckets, slots, keyLen int) (*DLeft, error) {
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: d-left pair requires both hash functions")
	}
	d, err := NewDLeft([]hashfn.Func{pair.H1, pair.H2}, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	d.khWords[0], d.khWords[1] = khH1, khH2
	return d, nil
}

// liveID folds a live-generation sub-table and arena offset into a slot ID
// (the ID layout concatenates the sub-table arenas).
func (d *DLeft) liveID(g *dlArena, table, off int) uint64 {
	return uint64(table*g.slots(d.slots) + off)
}

// oldBase is the first retiring-generation slot ID: the region above the
// live generation's IDs (table.GrowLayout's OldBase).
func (d *DLeft) oldBase(g *dlArena) uint64 {
	return uint64(len(d.hashes) * g.slots(d.slots))
}

func (d *DLeft) checkKey(key []byte) {
	if len(key) != d.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), d.keyLen))
	}
}

// wordOf derives the key's hash word and fingerprint tag for sub-table t:
// the aligned KeyHashes word when the caller supplied hashes and the
// sub-table is pair-bound, otherwise by hashing the key bytes. Callers
// reduce the word against the generation they are probing — live and
// retiring have different bucket counts. Evaluation stays lazy per
// sub-table — a lookup resolving in sub-table 0 never pays for sub-table
// 1's hash on the byte-key path, exactly as before.
func (d *DLeft) wordOf(t int, key []byte, kh *hashfn.KeyHashes) (uint64, uint8) {
	if kh != nil {
		switch d.khWords[t] {
		case khH1:
			return kh.H1, slotarr.TagOf(kh.H1)
		case khH2:
			return kh.H2, slotarr.TagOf(kh.H2)
		}
	}
	w := d.hashes[t].Hash(key)
	return w, slotarr.TagOf(w)
}

// read probes the candidate buckets in sub-table order (hardware searches
// the sub-tables in parallel, but each is a memory access) with zero
// stats writes — the lock-free read core. Mid-migration the retiring
// generation's candidates follow the live ones. The outcome token is the
// probe count the access model charges: t+1 for a live hit in sub-table
// t, d+t+1 for a retiring hit, d on a full single-generation miss, 2d on
// a full two-generation miss.
func (d *DLeft) read(key []byte, kh *hashfn.KeyHashes) (uint64, uint8, bool) {
	g := d.live.Load()
	n := len(d.hashes)
	for t := range d.hashes {
		w, tag := d.wordOf(t, key, kh)
		base := hashfn.Reduce(w, g.buckets) * d.slots
		if off, ok := bucketSearch(g.stores[t], base, d.slots, tag, key); ok {
			return d.liveID(g, t, off), uint8(t) + 1, true
		}
	}
	og := d.old.Load()
	if og == nil {
		return 0, uint8(n), false
	}
	for t := range d.hashes {
		w, tag := d.wordOf(t, key, kh)
		base := hashfn.Reduce(w, og.buckets) * d.slots
		if off, ok := bucketSearch(og.stores[t], base, d.slots, tag, key); ok {
			return d.oldBase(g) + uint64(t*og.slots(d.slots)+off), uint8(n+t) + 1, true
		}
	}
	return 0, uint8(2 * n), false
}

// lookup is read plus the accounting: probes are charged in one atomic
// add at exit.
func (d *DLeft) lookup(key []byte, kh *hashfn.KeyHashes) (uint64, bool) {
	id, probes, ok := d.read(key, kh)
	d.probes.Add(int64(probes))
	return id, ok
}

// Lookup implements LookupTable.
func (d *DLeft) Lookup(key []byte) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, nil)
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (d *DLeft) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, &kh)
}

// placeLeast puts key in the least-loaded live candidate bucket, ties
// breaking to the leftmost sub-table. Shared by insert and the migration
// re-placement, so a grow preserves the structure's placement policy.
func (d *DLeft) placeLeast(g *dlArena, key []byte, kh *hashfn.KeyHashes) (uint64, bool) {
	bestTable, bestBucket, bestLoad := -1, -1, d.slots+1
	var bestTag uint8
	for t := range d.hashes {
		w, tag := d.wordOf(t, key, kh)
		b := hashfn.Reduce(w, g.buckets)
		load := g.stores[t].Load(b*d.slots, d.slots)
		if load < bestLoad {
			bestTable, bestBucket, bestLoad, bestTag = t, b, load, tag
		}
	}
	if bestLoad >= d.slots {
		return 0, false
	}
	off, ok := g.stores[bestTable].FindFree(bestBucket*d.slots, d.slots)
	if !ok {
		panic("baseline: d-left free slot vanished") // unreachable
	}
	g.stores[bestTable].Set(off, bestTag, key)
	g.counts[bestTable]++
	return d.liveID(g, bestTable, off), true
}

// insert places key in the least-loaded live candidate bucket unless
// present in either generation. Inserts never target the retiring
// generation — it only drains.
func (d *DLeft) insert(key []byte, kh *hashfn.KeyHashes) (uint64, error) {
	if id, ok := d.lookup(key, kh); ok {
		return id, nil
	}
	id, ok := d.placeLeast(d.live.Load(), key, kh)
	if !ok {
		return 0, fmt.Errorf("baseline: d-left: all %d candidate buckets full: %w", len(d.hashes), ErrTableFull)
	}
	d.probes.Add(1)
	return id, nil
}

// Insert implements LookupTable: least-loaded candidate bucket, leftmost
// tie-break.
func (d *DLeft) Insert(key []byte) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, nil)
}

// InsertHashed implements the hashed fast path.
func (d *DLeft) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, &kh)
}

// clearID reclaims the slot behind a read-resolved ID, decrementing the
// owning generation's count. Requires the caller's exclusive lock.
func (d *DLeft) clearID(id uint64) {
	g := d.live.Load()
	if base := d.oldBase(g); id >= base {
		og := d.old.Load()
		t, off := int(id-base)/og.slots(d.slots), int(id-base)%og.slots(d.slots)
		og.stores[t].Clear(off)
		og.counts[t]--
		return
	}
	t, off := int(id)/g.slots(d.slots), int(id)%g.slots(d.slots)
	g.stores[t].Clear(off)
	g.counts[t]--
}

// delete removes key from whichever generation holds it. The probe charge
// is the read's token — t+1 on a live hit, d on a miss — matching the
// historical accounting in the single-generation case.
func (d *DLeft) delete(key []byte, kh *hashfn.KeyHashes) bool {
	id, probes, ok := d.read(key, kh)
	d.probes.Add(int64(probes))
	if !ok {
		return false
	}
	d.clearID(id)
	return true
}

// Delete implements LookupTable.
func (d *DLeft) Delete(key []byte) bool {
	d.checkKey(key)
	return d.delete(key, nil)
}

// DeleteHashed implements the hashed fast path.
func (d *DLeft) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	d.checkKey(key)
	return d.delete(key, &kh)
}

// Len implements LookupTable: entries across both generations.
func (d *DLeft) Len() int {
	n := 0
	for _, c := range d.live.Load().counts {
		n += c
	}
	if og := d.old.Load(); og != nil {
		for _, c := range og.counts {
			n += c
		}
	}
	return n
}

// Probes implements LookupTable.
func (d *DLeft) Probes() int64 { return d.probes.Load() }

// Name implements LookupTable.
func (d *DLeft) Name() string { return fmt.Sprintf("%d-left", len(d.hashes)) }

// TableLoads returns the live generation's per-sub-table entry counts
// (left-skew check).
func (d *DLeft) TableLoads() []int { return append([]int(nil), d.live.Load().counts...) }

// StripeBound implements table.StripedBackend: the construction-time
// bucket count when it is a power of two (so every generation's buckets
// are low-bit folds of the hash words) and every sub-table is bound to a
// KeyHashes word (khNone sub-tables hash key bytes the sharded layer
// never sees, so their buckets are not congruent to any stripe); else 1.
func (d *DLeft) StripeBound() int {
	if d.conBuckets&(d.conBuckets-1) != 0 {
		return 1
	}
	for _, w := range d.khWords {
		if w == khNone {
			return 1
		}
	}
	return d.conBuckets
}

// SetEscalateHook implements table.StripedBackend as a no-op: every
// d-left mutation — the least-loaded placement and the delete of a
// read-resolved slot — lands in one of the key's candidate buckets, and
// migration re-placements run under the sharded layer's global sections.
func (d *DLeft) SetEscalateHook(func()) {}

// PrefetchHashed implements table.PrefetchBackend: every pair-bound
// sub-table's live candidate bucket is touched (khNone sub-tables would
// need a hash evaluation, which a prefetch hint must not spend).
func (d *DLeft) PrefetchHashed(kh hashfn.KeyHashes) uint64 {
	g := d.live.Load()
	var acc uint64
	for t := range g.stores {
		switch d.khWords[t] {
		case khH1:
			acc ^= g.stores[t].Touch(hashfn.Reduce(kh.H1, g.buckets) * d.slots)
		case khH2:
			acc ^= g.stores[t].Touch(hashfn.Reduce(kh.H2, g.buckets) * d.slots)
		}
	}
	return acc
}

// ReadHashed implements table.OptimisticBackend: the outcome token is the
// probe count the scan charged (1..d, or up to 2d mid-migration).
func (d *DLeft) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	d.checkKey(key)
	return d.read(key, &kh)
}

// CommitReads implements table.OptimisticBackend.
func (d *DLeft) CommitReads(outcome uint8, n int64) {
	d.probes.Add(int64(outcome) * n)
}

// ReadLockFree implements table.OptimisticBackend: the inline slot path
// only, and only while the worst-case probe-count outcome — a full miss
// across both generations mid-migration (= 2d) — fits the token bound (a
// NewDLeft with that many sub-tables is out-of-tree territory; the
// registry's 2-left always qualifies).
func (d *DLeft) ReadLockFree() bool {
	return d.live.Load().stores[0].Inline() && 2*len(d.hashes) < table.MaxReadOutcomes
}

// StorageBytes implements table.StorageSized: the sub-table arenas of
// both generations.
func (d *DLeft) StorageBytes() int64 {
	var n int64
	for _, st := range d.live.Load().stores {
		n += st.Bytes()
	}
	if og := d.old.Load(); og != nil {
		for _, st := range og.stores {
			n += st.Bytes()
		}
	}
	return n
}
