package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// DLeft is d-choice (d-left) hashing after Azar et al. [6]: d sub-tables,
// each with its own hash function; a key is placed in the least-loaded of
// its d candidate buckets, ties breaking to the leftmost sub-table.
type DLeft struct {
	hashes  []hashfn.Func
	buckets int
	slots   int
	keyLen  int

	keys   [][]byte // per sub-table arenas
	used   [][]bool
	counts []int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewDLeft builds a d-left table with one sub-table per hash function.
func NewDLeft(hashes []hashfn.Func, buckets, slots, keyLen int) (*DLeft, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if len(hashes) < 2 {
		return nil, fmt.Errorf("baseline: d-left requires at least 2 hash functions, got %d", len(hashes))
	}
	d := &DLeft{
		hashes:  hashes,
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		keys:    make([][]byte, len(hashes)),
		used:    make([][]bool, len(hashes)),
		counts:  make([]int, len(hashes)),
	}
	for i := range hashes {
		d.keys[i] = make([]byte, buckets*slots*keyLen)
		d.used[i] = make([]bool, buckets*slots)
	}
	return d, nil
}

func (d *DLeft) slotKey(table, bucket, slot int) []byte {
	base := (bucket*d.slots + slot) * d.keyLen
	return d.keys[table][base : base+d.keyLen]
}

func (d *DLeft) id(table, bucket, slot int) uint64 {
	perTable := d.buckets * d.slots
	return uint64(table*perTable + bucket*d.slots + slot)
}

func (d *DLeft) checkKey(key []byte) {
	if len(key) != d.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), d.keyLen))
	}
}

// Lookup implements LookupTable. All d buckets are probed (hardware
// searches the sub-tables in parallel, but each is a memory access);
// probes are charged in one atomic add at exit.
func (d *DLeft) Lookup(key []byte) (uint64, bool) {
	d.checkKey(key)
	for t, h := range d.hashes {
		b := hashfn.Reduce(h.Hash(key), d.buckets)
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] && bytes.Equal(d.slotKey(t, b, slot), key) {
				d.probes.Add(int64(t) + 1)
				return d.id(t, b, slot), true
			}
		}
	}
	d.probes.Add(int64(len(d.hashes)))
	return 0, false
}

// Insert implements LookupTable: least-loaded candidate bucket, leftmost
// tie-break.
func (d *DLeft) Insert(key []byte) (uint64, error) {
	if id, ok := d.Lookup(key); ok {
		return id, nil
	}
	bestTable, bestBucket, bestLoad := -1, -1, d.slots+1
	for t, h := range d.hashes {
		b := hashfn.Reduce(h.Hash(key), d.buckets)
		load := 0
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] {
				load++
			}
		}
		if load < bestLoad {
			bestTable, bestBucket, bestLoad = t, b, load
		}
	}
	if bestLoad >= d.slots {
		return 0, fmt.Errorf("baseline: d-left: all %d candidate buckets full: %w", len(d.hashes), ErrTableFull)
	}
	for slot := 0; slot < d.slots; slot++ {
		if !d.used[bestTable][bestBucket*d.slots+slot] {
			copy(d.slotKey(bestTable, bestBucket, slot), key)
			d.used[bestTable][bestBucket*d.slots+slot] = true
			d.counts[bestTable]++
			d.probes.Add(1)
			return d.id(bestTable, bestBucket, slot), nil
		}
	}
	panic("baseline: d-left free slot vanished") // unreachable
}

// Delete implements LookupTable.
func (d *DLeft) Delete(key []byte) bool {
	d.checkKey(key)
	for t, h := range d.hashes {
		b := hashfn.Reduce(h.Hash(key), d.buckets)
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] && bytes.Equal(d.slotKey(t, b, slot), key) {
				d.used[t][b*d.slots+slot] = false
				d.counts[t]--
				d.probes.Add(int64(t) + 1)
				return true
			}
		}
	}
	d.probes.Add(int64(len(d.hashes)))
	return false
}

// Len implements LookupTable.
func (d *DLeft) Len() int {
	n := 0
	for _, c := range d.counts {
		n += c
	}
	return n
}

// Probes implements LookupTable.
func (d *DLeft) Probes() int64 { return d.probes.Load() }

// Name implements LookupTable.
func (d *DLeft) Name() string { return fmt.Sprintf("%d-left", len(d.hashes)) }

// TableLoads returns the per-sub-table entry counts (left-skew check).
func (d *DLeft) TableLoads() []int { return append([]int(nil), d.counts...) }
