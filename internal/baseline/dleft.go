package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// DLeft is d-choice (d-left) hashing after Azar et al. [6]: d sub-tables,
// each with its own hash function; a key is placed in the least-loaded of
// its d candidate buckets, ties breaking to the leftmost sub-table.
type DLeft struct {
	hashes []hashfn.Func
	// khWords aligns each sub-table's hash function with a word of a
	// precomputed hashfn.KeyHashes (khH1/khH2), the per-sub-table hash
	// list of the hashed fast path. khNone entries rehash the key bytes.
	khWords []int8
	buckets int
	slots   int
	keyLen  int

	keys   [][]byte // per sub-table arenas
	used   [][]bool
	counts []int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewDLeft builds a d-left table with one sub-table per hash function. The
// hashed fast-path methods on a table built this way fall back to hashing
// (arbitrary Funcs have no KeyHashes words); use NewDLeftPair to align the
// sub-tables with a pair so precomputed hashes are consumed directly.
func NewDLeft(hashes []hashfn.Func, buckets, slots, keyLen int) (*DLeft, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if len(hashes) < 2 {
		return nil, fmt.Errorf("baseline: d-left requires at least 2 hash functions, got %d", len(hashes))
	}
	d := &DLeft{
		hashes:  hashes,
		khWords: make([]int8, len(hashes)),
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		keys:    make([][]byte, len(hashes)),
		used:    make([][]bool, len(hashes)),
		counts:  make([]int, len(hashes)),
	}
	for i := range hashes {
		d.khWords[i] = khNone
		d.keys[i] = make([]byte, buckets*slots*keyLen)
		d.used[i] = make([]bool, buckets*slots)
	}
	return d, nil
}

// NewDLeftPair builds the 2-left table over [pair.H1, pair.H2] with each
// sub-table bound to its KeyHashes word — the registry constructor, so a
// sharded d-left table hashes each key exactly once per operation.
func NewDLeftPair(pair hashfn.Pair, buckets, slots, keyLen int) (*DLeft, error) {
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: d-left pair requires both hash functions")
	}
	d, err := NewDLeft([]hashfn.Func{pair.H1, pair.H2}, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	d.khWords[0], d.khWords[1] = khH1, khH2
	return d, nil
}

func (d *DLeft) slotKey(table, bucket, slot int) []byte {
	base := (bucket*d.slots + slot) * d.keyLen
	return d.keys[table][base : base+d.keyLen]
}

func (d *DLeft) id(table, bucket, slot int) uint64 {
	perTable := d.buckets * d.slots
	return uint64(table*perTable + bucket*d.slots + slot)
}

func (d *DLeft) checkKey(key []byte) {
	if len(key) != d.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), d.keyLen))
	}
}

// bucketOf derives the key's bucket in sub-table t: from the aligned
// KeyHashes word when the caller supplied hashes and the sub-table is
// pair-bound, otherwise by hashing the key bytes. Evaluation stays lazy per
// sub-table — a lookup resolving in sub-table 0 never pays for sub-table
// 1's hash on the byte-key path, exactly as before.
func (d *DLeft) bucketOf(t int, key []byte, kh *hashfn.KeyHashes) int {
	if kh != nil {
		switch d.khWords[t] {
		case khH1:
			return hashfn.Reduce(kh.H1, d.buckets)
		case khH2:
			return hashfn.Reduce(kh.H2, d.buckets)
		}
	}
	return hashfn.Reduce(d.hashes[t].Hash(key), d.buckets)
}

// lookup probes the candidate buckets in sub-table order (hardware searches
// the sub-tables in parallel, but each is a memory access); probes are
// charged in one atomic add at exit.
func (d *DLeft) lookup(key []byte, kh *hashfn.KeyHashes) (uint64, bool) {
	for t := range d.hashes {
		b := d.bucketOf(t, key, kh)
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] && bytes.Equal(d.slotKey(t, b, slot), key) {
				d.probes.Add(int64(t) + 1)
				return d.id(t, b, slot), true
			}
		}
	}
	d.probes.Add(int64(len(d.hashes)))
	return 0, false
}

// Lookup implements LookupTable.
func (d *DLeft) Lookup(key []byte) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, nil)
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (d *DLeft) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, &kh)
}

// insert places key in the least-loaded candidate bucket, ties breaking to
// the leftmost sub-table.
func (d *DLeft) insert(key []byte, kh *hashfn.KeyHashes) (uint64, error) {
	if id, ok := d.lookup(key, kh); ok {
		return id, nil
	}
	bestTable, bestBucket, bestLoad := -1, -1, d.slots+1
	for t := range d.hashes {
		b := d.bucketOf(t, key, kh)
		load := 0
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] {
				load++
			}
		}
		if load < bestLoad {
			bestTable, bestBucket, bestLoad = t, b, load
		}
	}
	if bestLoad >= d.slots {
		return 0, fmt.Errorf("baseline: d-left: all %d candidate buckets full: %w", len(d.hashes), ErrTableFull)
	}
	for slot := 0; slot < d.slots; slot++ {
		if !d.used[bestTable][bestBucket*d.slots+slot] {
			copy(d.slotKey(bestTable, bestBucket, slot), key)
			d.used[bestTable][bestBucket*d.slots+slot] = true
			d.counts[bestTable]++
			d.probes.Add(1)
			return d.id(bestTable, bestBucket, slot), nil
		}
	}
	panic("baseline: d-left free slot vanished") // unreachable
}

// Insert implements LookupTable: least-loaded candidate bucket, leftmost
// tie-break.
func (d *DLeft) Insert(key []byte) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, nil)
}

// InsertHashed implements the hashed fast path.
func (d *DLeft) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, &kh)
}

// delete removes key from whichever candidate bucket holds it.
func (d *DLeft) delete(key []byte, kh *hashfn.KeyHashes) bool {
	for t := range d.hashes {
		b := d.bucketOf(t, key, kh)
		for slot := 0; slot < d.slots; slot++ {
			if d.used[t][b*d.slots+slot] && bytes.Equal(d.slotKey(t, b, slot), key) {
				d.used[t][b*d.slots+slot] = false
				d.counts[t]--
				d.probes.Add(int64(t) + 1)
				return true
			}
		}
	}
	d.probes.Add(int64(len(d.hashes)))
	return false
}

// Delete implements LookupTable.
func (d *DLeft) Delete(key []byte) bool {
	d.checkKey(key)
	return d.delete(key, nil)
}

// DeleteHashed implements the hashed fast path.
func (d *DLeft) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	d.checkKey(key)
	return d.delete(key, &kh)
}

// Len implements LookupTable.
func (d *DLeft) Len() int {
	n := 0
	for _, c := range d.counts {
		n += c
	}
	return n
}

// Probes implements LookupTable.
func (d *DLeft) Probes() int64 { return d.probes.Load() }

// Name implements LookupTable.
func (d *DLeft) Name() string { return fmt.Sprintf("%d-left", len(d.hashes)) }

// TableLoads returns the per-sub-table entry counts (left-skew check).
func (d *DLeft) TableLoads() []int { return append([]int(nil), d.counts...) }
