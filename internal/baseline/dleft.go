package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/table"
	"repro/internal/table/slotarr"
)

// DLeft is d-choice (d-left) hashing after Azar et al. [6]: d sub-tables,
// each with its own hash function; a key is placed in the least-loaded of
// its d candidate buckets, ties breaking to the leftmost sub-table.
type DLeft struct {
	hashes []hashfn.Func
	// khWords aligns each sub-table's hash function with a word of a
	// precomputed hashfn.KeyHashes (khH1/khH2), the per-sub-table hash
	// list of the hashed fast path. khNone entries rehash the key bytes.
	khWords []int8
	buckets int
	slots   int
	keyLen  int

	stores []*slotarr.Store // per sub-table arenas (inline keys + tags)
	counts []int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewDLeft builds a d-left table with one sub-table per hash function. The
// hashed fast-path methods on a table built this way fall back to hashing
// (arbitrary Funcs have no KeyHashes words); use NewDLeftPair to align the
// sub-tables with a pair so precomputed hashes are consumed directly.
func NewDLeft(hashes []hashfn.Func, buckets, slots, keyLen int) (*DLeft, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if len(hashes) < 2 {
		return nil, fmt.Errorf("baseline: d-left requires at least 2 hash functions, got %d", len(hashes))
	}
	d := &DLeft{
		hashes:  hashes,
		khWords: make([]int8, len(hashes)),
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		stores:  make([]*slotarr.Store, len(hashes)),
		counts:  make([]int, len(hashes)),
	}
	for i := range hashes {
		d.khWords[i] = khNone
		d.stores[i] = slotarr.New(buckets*slots, keyLen)
	}
	return d, nil
}

// NewDLeftPair builds the 2-left table over [pair.H1, pair.H2] with each
// sub-table bound to its KeyHashes word — the registry constructor, so a
// sharded d-left table hashes each key exactly once per operation.
func NewDLeftPair(pair hashfn.Pair, buckets, slots, keyLen int) (*DLeft, error) {
	if pair.H1 == nil || pair.H2 == nil {
		return nil, fmt.Errorf("baseline: d-left pair requires both hash functions")
	}
	d, err := NewDLeft([]hashfn.Func{pair.H1, pair.H2}, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	d.khWords[0], d.khWords[1] = khH1, khH2
	return d, nil
}

// id folds a sub-table and arena offset into a slot ID (the ID layout
// concatenates the sub-table arenas).
func (d *DLeft) id(table, off int) uint64 {
	return uint64(table*d.buckets*d.slots + off)
}

func (d *DLeft) checkKey(key []byte) {
	if len(key) != d.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), d.keyLen))
	}
}

// bucketOf derives the key's bucket and fingerprint tag in sub-table t
// from one hash word: the aligned KeyHashes word when the caller supplied
// hashes and the sub-table is pair-bound, otherwise by hashing the key
// bytes. Evaluation stays lazy per sub-table — a lookup resolving in
// sub-table 0 never pays for sub-table 1's hash on the byte-key path,
// exactly as before.
func (d *DLeft) bucketOf(t int, key []byte, kh *hashfn.KeyHashes) (int, uint8) {
	if kh != nil {
		switch d.khWords[t] {
		case khH1:
			return hashfn.Reduce(kh.H1, d.buckets), slotarr.TagOf(kh.H1)
		case khH2:
			return hashfn.Reduce(kh.H2, d.buckets), slotarr.TagOf(kh.H2)
		}
	}
	w := d.hashes[t].Hash(key)
	return hashfn.Reduce(w, d.buckets), slotarr.TagOf(w)
}

// read probes the candidate buckets in sub-table order (hardware searches
// the sub-tables in parallel, but each is a memory access) with zero
// stats writes — the lock-free read core. The outcome token is the probe
// count the access model charges: t+1 for a hit in sub-table t, d on a
// full miss.
func (d *DLeft) read(key []byte, kh *hashfn.KeyHashes) (uint64, uint8, bool) {
	for t := range d.hashes {
		b, tag := d.bucketOf(t, key, kh)
		st := d.stores[t]
		base := b * d.slots
		if d.slots > 8 {
			if off, ok := st.FindTagged(base, d.slots, tag, key); ok {
				return d.id(t, off), uint8(t) + 1, true
			}
			continue
		}
		// Candidate loop in this frame over the inlinable TagMatches leaf.
		for m := st.TagMatches(base, d.slots, tag); m != 0; {
			var off int
			off, m = slotarr.NextMatch(m)
			if bytes.Equal(st.Key(base+off), key) {
				return d.id(t, base+off), uint8(t) + 1, true
			}
		}
	}
	return 0, uint8(len(d.hashes)), false
}

// lookup is read plus the accounting: probes are charged in one atomic
// add at exit.
func (d *DLeft) lookup(key []byte, kh *hashfn.KeyHashes) (uint64, bool) {
	id, probes, ok := d.read(key, kh)
	d.probes.Add(int64(probes))
	return id, ok
}

// Lookup implements LookupTable.
func (d *DLeft) Lookup(key []byte) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, nil)
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (d *DLeft) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	d.checkKey(key)
	return d.lookup(key, &kh)
}

// insert places key in the least-loaded candidate bucket, ties breaking to
// the leftmost sub-table.
func (d *DLeft) insert(key []byte, kh *hashfn.KeyHashes) (uint64, error) {
	if id, ok := d.lookup(key, kh); ok {
		return id, nil
	}
	bestTable, bestBucket, bestLoad := -1, -1, d.slots+1
	var bestTag uint8
	for t := range d.hashes {
		b, tag := d.bucketOf(t, key, kh)
		load := d.stores[t].Load(b*d.slots, d.slots)
		if load < bestLoad {
			bestTable, bestBucket, bestLoad, bestTag = t, b, load, tag
		}
	}
	if bestLoad >= d.slots {
		return 0, fmt.Errorf("baseline: d-left: all %d candidate buckets full: %w", len(d.hashes), ErrTableFull)
	}
	off, ok := d.stores[bestTable].FindFree(bestBucket*d.slots, d.slots)
	if !ok {
		panic("baseline: d-left free slot vanished") // unreachable
	}
	d.stores[bestTable].Set(off, bestTag, key)
	d.counts[bestTable]++
	d.probes.Add(1)
	return d.id(bestTable, off), nil
}

// Insert implements LookupTable: least-loaded candidate bucket, leftmost
// tie-break.
func (d *DLeft) Insert(key []byte) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, nil)
}

// InsertHashed implements the hashed fast path.
func (d *DLeft) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	d.checkKey(key)
	return d.insert(key, &kh)
}

// delete removes key from whichever candidate bucket holds it.
func (d *DLeft) delete(key []byte, kh *hashfn.KeyHashes) bool {
	for t := range d.hashes {
		b, tag := d.bucketOf(t, key, kh)
		if off, ok := d.stores[t].FindTagged(b*d.slots, d.slots, tag, key); ok {
			d.stores[t].Clear(off)
			d.counts[t]--
			d.probes.Add(int64(t) + 1)
			return true
		}
	}
	d.probes.Add(int64(len(d.hashes)))
	return false
}

// Delete implements LookupTable.
func (d *DLeft) Delete(key []byte) bool {
	d.checkKey(key)
	return d.delete(key, nil)
}

// DeleteHashed implements the hashed fast path.
func (d *DLeft) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	d.checkKey(key)
	return d.delete(key, &kh)
}

// Len implements LookupTable.
func (d *DLeft) Len() int {
	n := 0
	for _, c := range d.counts {
		n += c
	}
	return n
}

// Probes implements LookupTable.
func (d *DLeft) Probes() int64 { return d.probes.Load() }

// Name implements LookupTable.
func (d *DLeft) Name() string { return fmt.Sprintf("%d-left", len(d.hashes)) }

// TableLoads returns the per-sub-table entry counts (left-skew check).
func (d *DLeft) TableLoads() []int { return append([]int(nil), d.counts...) }

// PrefetchHashed implements table.PrefetchBackend: every pair-bound
// sub-table's candidate bucket is touched (khNone sub-tables would need a
// hash evaluation, which a prefetch hint must not spend).
func (d *DLeft) PrefetchHashed(kh hashfn.KeyHashes) uint64 {
	var acc uint64
	for t := range d.stores {
		switch d.khWords[t] {
		case khH1:
			acc ^= d.stores[t].Touch(hashfn.Reduce(kh.H1, d.buckets) * d.slots)
		case khH2:
			acc ^= d.stores[t].Touch(hashfn.Reduce(kh.H2, d.buckets) * d.slots)
		}
	}
	return acc
}

// ReadHashed implements table.OptimisticBackend: the outcome token is the
// probe count the scan charged (1..d).
func (d *DLeft) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	d.checkKey(key)
	return d.read(key, &kh)
}

// CommitReads implements table.OptimisticBackend.
func (d *DLeft) CommitReads(outcome uint8, n int64) {
	d.probes.Add(int64(outcome) * n)
}

// ReadLockFree implements table.OptimisticBackend: the inline slot path
// only, and only while the probe-count outcome of a full miss (= d) fits
// the token bound (a NewDLeft with that many sub-tables is out-of-tree
// territory; the registry's 2-left always qualifies).
func (d *DLeft) ReadLockFree() bool {
	return d.stores[0].Inline() && len(d.hashes) < table.MaxReadOutcomes
}

// StorageBytes implements table.StorageSized: the sub-table arenas.
func (d *DLeft) StorageBytes() int64 {
	var n int64
	for _, st := range d.stores {
		n += st.Bytes()
	}
	return n
}
