// Package baseline implements the lookup structures the paper positions
// itself against (§II): a conventional single-hash table, multi-choice
// (d-left) hashing [6], cuckoo hashing [7], and the conventional Hash-CAM
// with simultaneous CAM+hash search [10][11]. All of them — and the
// paper's hashcam.Table — satisfy the repo-wide table.Backend contract so
// the comparison benches and the sharded engine can sweep structures
// uniformly; this package registers each of them with the table registry.
package baseline

import "repro/internal/table"

// LookupTable is the historical name of the exact-match structure
// contract, now owned by the table package.
type LookupTable = table.Backend

// ErrTableFull re-exports the contract's insert-overflow sentinel.
var ErrTableFull = table.ErrTableFull
