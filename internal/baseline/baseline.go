// Package baseline implements the lookup structures the paper positions
// itself against (§II): a conventional single-hash table, multi-choice
// (d-left) hashing [6], cuckoo hashing [7], and the conventional Hash-CAM
// with simultaneous CAM+hash search [10][11]. All of them — and the
// paper's hashcam.Table — satisfy the LookupTable interface so the
// comparison benches can sweep structures uniformly.
package baseline

import "fmt"

// LookupTable is the common contract of every exact-match flow structure
// in this repository.
type LookupTable interface {
	// Lookup returns the stored ID of key.
	Lookup(key []byte) (uint64, bool)
	// Insert stores key if absent and returns its ID; inserting an
	// existing key returns the existing ID.
	Insert(key []byte) (uint64, error)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) bool
	// Len returns the stored entry count.
	Len() int
	// Probes returns the cumulative bucket/CAM accesses performed, the
	// memory-traffic proxy used by comparison benches.
	Probes() int64
	// Name identifies the structure in bench output.
	Name() string
}

// ErrTableFull is returned by Insert when a structure cannot place a key.
var ErrTableFull = fmt.Errorf("baseline: table full")
