package baseline

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cam"
	"repro/internal/hashcam"
	"repro/internal/hashfn"
	"repro/internal/table"
)

// ConvHashCAM is the conventional Hash-CAM arrangement of [10][11]: the
// CAM and both hash-table halves are searched simultaneously on every
// request. Results are identical to the proposed table; the cost contract
// differs — every lookup pays all three accesses, whereas the proposed
// pipelined table stops at the first match ("a match occurring at any
// stage stops the current search", §III-A). The probe counters make that
// difference measurable.
type ConvHashCAM struct {
	table  *hashcam.Table
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewConvHashCAM builds the conventional arrangement over cfg.
func NewConvHashCAM(cfg hashcam.Config) (*ConvHashCAM, error) {
	t, err := hashcam.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("baseline: conventional hash-cam: %w", err)
	}
	return &ConvHashCAM{table: t}, nil
}

// Lookup implements LookupTable: all three structures are always probed.
func (c *ConvHashCAM) Lookup(key []byte) (uint64, bool) {
	c.probes.Add(3) // CAM + Mem1 + Mem2, issued simultaneously
	id, _, ok := c.table.Lookup(key)
	return id, ok
}

// Insert implements LookupTable, normalising genuine overflow onto
// table.ErrTableFull so callers can test fullness uniformly across
// backends (the same mapping hashcam's own adapter applies).
func (c *ConvHashCAM) Insert(key []byte) (uint64, error) {
	c.probes.Add(4) // simultaneous triple search + the write
	return normalizeFull(c.table.Insert(key))
}

// normalizeFull maps cam.ErrFull onto the repo-wide fullness sentinel.
func normalizeFull(id uint64, err error) (uint64, error) {
	if err != nil && errors.Is(err, cam.ErrFull) {
		return 0, fmt.Errorf("baseline: conventional hash-cam: %w: %w", table.ErrTableFull, err)
	}
	return id, err
}

// Delete implements LookupTable.
func (c *ConvHashCAM) Delete(key []byte) bool {
	c.probes.Add(4)
	return c.table.Delete(key)
}

// LookupHashed implements the hashed fast path (table.HashedBackend); the
// cost contract is unchanged — all three structures are charged.
func (c *ConvHashCAM) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	c.probes.Add(3)
	id, _, ok := c.table.LookupHashed(key, kh)
	return id, ok
}

// InsertHashed implements the hashed fast path with the same error
// normalisation as Insert.
func (c *ConvHashCAM) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	c.probes.Add(4)
	return normalizeFull(c.table.InsertHashed(key, kh))
}

// DeleteHashed implements the hashed fast path.
func (c *ConvHashCAM) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	c.probes.Add(4)
	return c.table.DeleteHashed(key, kh)
}

// Len implements LookupTable.
func (c *ConvHashCAM) Len() int { return c.table.Len() }

// Probes implements LookupTable.
func (c *ConvHashCAM) Probes() int64 { return c.probes.Load() }

// Name implements LookupTable.
func (c *ConvHashCAM) Name() string { return "conventional-hashcam" }

// Proposed adapts the paper's early-exit hashcam.Table to the LookupTable
// interface for side-by-side benches.
type Proposed struct {
	Table *hashcam.Table
}

// NewProposed builds the adapter over cfg.
func NewProposed(cfg hashcam.Config) (*Proposed, error) {
	t, err := hashcam.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("baseline: proposed table: %w", err)
	}
	return &Proposed{Table: t}, nil
}

// Lookup implements LookupTable.
func (p *Proposed) Lookup(key []byte) (uint64, bool) {
	id, _, ok := p.Table.Lookup(key)
	return id, ok
}

// Insert implements LookupTable.
func (p *Proposed) Insert(key []byte) (uint64, error) { return p.Table.Insert(key) }

// Delete implements LookupTable.
func (p *Proposed) Delete(key []byte) bool { return p.Table.Delete(key) }

// Len implements LookupTable.
func (p *Proposed) Len() int { return p.Table.Len() }

// Probes implements LookupTable.
func (p *Proposed) Probes() int64 { return p.Table.Stats().Probes }

// Name implements LookupTable.
func (p *Proposed) Name() string { return "proposed-hashcam" }

// PrefetchHashed implements table.PrefetchBackend, delegating to the
// inner table (same geometry, same candidate buckets).
func (c *ConvHashCAM) PrefetchHashed(kh hashfn.KeyHashes) uint64 { return c.table.Prefetch(kh) }

// ReadHashed implements table.OptimisticBackend: the inner table's
// stats-free search runs as usual (its early exit changes cost accounting,
// never results), and the outcome token is the inner resolving stage so
// CommitReads can replay both ledgers — this adapter's always-3 probe
// charge and the inner table's stage outcome.
func (c *ConvHashCAM) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	id, stage, ok := c.table.ReadHashed(key, kh)
	return id, uint8(stage - 1), ok
}

// CommitReads implements table.OptimisticBackend.
func (c *ConvHashCAM) CommitReads(outcome uint8, n int64) {
	c.probes.Add(3 * n)
	c.table.CommitLookups(hashcam.Stage(outcome)+1, n)
}

// ReadLockFree implements table.OptimisticBackend, delegating to the
// inner table.
func (c *ConvHashCAM) ReadLockFree() bool { return c.table.ReadLockFree() }

// StripeBound implements table.StripedBackend, delegating to the inner
// table (same geometry, same candidate buckets, same CAM region).
func (c *ConvHashCAM) StripeBound() int { return c.table.StripeBound() }

// SetEscalateHook implements table.StripedBackend, delegating to the
// inner table: its CAM mutations are this adapter's CAM mutations.
func (c *ConvHashCAM) SetEscalateHook(fn func()) { c.table.SetEscalateHook(fn) }

// StorageBytes implements table.StorageSized, delegating to the inner
// table.
func (c *ConvHashCAM) StorageBytes() int64 { return c.table.Bytes() }
