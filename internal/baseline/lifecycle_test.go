package baseline

import (
	"testing"

	"repro/internal/hashfn"
)

// TestCuckooHashCacheBitIdentity pins the per-slot hash cache refactor:
// an insert-heavy run with kick chains must leave the table bit-identical
// in observable behaviour (IDs, residency, Len) to what byte-key lookups
// report, and the cached words must always match a fresh hash of the slot
// key — the invariant that makes cache-driven kicks sound.
func TestCuckooHashCacheBitIdentity(t *testing.T) {
	pair := hashfn.DefaultPair()
	c, err := NewCuckoo(pair, 64, 2, 13, 64)
	if err != nil {
		t.Fatal(err)
	}
	inserted := map[string]bool{}
	for i := uint64(0); i < 500; i++ {
		k := key13(i)
		if _, err := c.Insert(k); err == nil {
			inserted[string(k)] = true
		}
	}
	if c.Relocations == 0 {
		t.Fatal("load did not trigger kick chains; the cache path is untested")
	}
	// Every cached word pair must equal the hash of the key stored in its
	// slot (walk all slots directly).
	for table := 0; table < 2; table++ {
		for off := 0; off < c.buckets*c.slots; off++ {
			if !c.stores[table].Occupied(off) {
				continue
			}
			key := c.stores[table].Key(off)
			w := c.slotWords(table, off)
			if w[0] != pair.H1.Hash(key) || w[1] != pair.H2.Hash(key) {
				t.Fatalf("slot (%d,%d) cached words stale for key %x", table, off, key)
			}
		}
	}
	// Residency must be coherent: everything accepted (and not displaced
	// by a failed chain) is findable via both lookup paths.
	found := 0
	for i := uint64(0); i < 500; i++ {
		k := key13(i)
		id1, ok1 := c.Lookup(k)
		id2, ok2 := c.LookupHashed(k, pair.Compute(k))
		if ok1 != ok2 || id1 != id2 {
			t.Fatalf("key %x: byte-key (%d,%v) vs hashed (%d,%v)", k, id1, ok1, id2, ok2)
		}
		if ok1 {
			found++
		}
	}
	if found != c.Len() {
		t.Fatalf("found %d resident keys, Len says %d", found, c.Len())
	}
}

// relocationModel mirrors the expiry layer's hand-over-hand replay (see
// table.RelocatingBackend): per-slot metadata — here, the key string the
// metadata belongs to — follows relocated entries through kick chains.
type relocationModel struct {
	meta map[uint64]string
}

// apply replays one chain's moves exactly as shardExpiryState.applyRelocations
// does: carry the in-flight entry's metadata, re-seeding at chain breaks.
func (m *relocationModel) apply(moves [][2]uint64) {
	var carry string
	for k, mv := range moves {
		if k == 0 || mv[0] != moves[k-1][1] {
			carry = m.meta[mv[0]]
		}
		next := m.meta[mv[1]]
		m.meta[mv[1]] = carry
		carry = next
	}
}

// checkResidents verifies every accepted key's metadata sits at the key's
// current slot.
func (m *relocationModel) checkResidents(t *testing.T, c *Cuckoo, accepted [][]byte) {
	t.Helper()
	for _, k := range accepted {
		id, ok := c.Lookup(k)
		if !ok {
			continue // displaced by a failed chain
		}
		if m.meta[id] != string(k) {
			t.Fatalf("key %x at slot %d carries metadata of %q", k, id, m.meta[id])
		}
	}
}

// TestCuckooRelocateHookChainOrder pins the hook contract on ordinary
// chains: one insert's moves, replayed hand-over-hand, keep per-slot
// metadata attached to the entries the chain relocated.
func TestCuckooRelocateHookChainOrder(t *testing.T) {
	pair := hashfn.DefaultPair()
	c, err := NewCuckoo(pair, 8, 1, 13, 32)
	if err != nil {
		t.Fatal(err)
	}
	model := &relocationModel{meta: map[uint64]string{}}
	c.SetRelocateHook(model.apply)
	var accepted [][]byte
	for i := uint64(0); len(accepted) < 13 && i < 10000; i++ {
		k := key13(i)
		id, err := c.Insert(k)
		if err != nil {
			continue
		}
		model.meta[id] = string(k)
		accepted = append(accepted, k)
	}
	if c.Relocations == 0 {
		t.Skip("no relocations at this geometry/seed; hook untestable")
	}
	model.checkResidents(t, c, accepted)
}

// TestCuckooRelocateHookRevisitingChains is the regression test for the
// review-confirmed replay bug: long kick chains at 1 slot per bucket can
// revisit slots — including re-evicting the key being inserted — which
// broke a naive (reverse-order, slot-reference) replay. The model is
// checked after every single insert so the first divergence pinpoints the
// offending chain; the returned ID must also be the key's true final
// location even when the chain moved it again.
func TestCuckooRelocateHookRevisitingChains(t *testing.T) {
	pair := hashfn.DefaultPair()
	c, err := NewCuckoo(pair, 8, 1, 13, 500)
	if err != nil {
		t.Fatal(err)
	}
	model := &relocationModel{meta: map[uint64]string{}}
	c.SetRelocateHook(model.apply)
	var accepted [][]byte
	for i := uint64(0); i < 64; i++ {
		k := key13(i)
		id, err := c.Insert(k)
		if err != nil {
			continue
		}
		if gotID, ok := c.Lookup(k); !ok || gotID != id {
			t.Fatalf("insert %d returned slot %d, key actually at (%d,%v)", i, id, gotID, ok)
		}
		model.meta[id] = string(k)
		accepted = append(accepted, k)
		model.checkResidents(t, c, accepted)
	}
	if c.MaxChain < 3 {
		t.Skipf("longest chain %d; geometry did not produce revisiting chains", c.MaxChain)
	}
}

// benchCuckooKeys builds the key set for the kick-chain benchmark: enough
// keys to drive a 2×buckets×slots table to ~85% load, where eviction
// chains dominate insert cost.
func benchCuckooKeys(buckets, slots int) [][]byte {
	n := 2 * buckets * slots * 85 / 100
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = key13(uint64(i))
	}
	return keys
}

// BenchmarkCuckooHighLoadInsert measures insert throughput while filling
// a cuckoo table to 85% load — the regime where kick chains run long and
// the per-slot hash cache (vs rehashing every evicted key per hop)
// matters. The pair dimension separates the two deployment regimes: with
// a hardware-assisted CRC pair a rehash is nearly free and the cache is
// memory traffic, while with software hash families (tabulation here) the
// avoided rehashes are real work.
func BenchmarkCuckooHighLoadInsert(b *testing.B) {
	const buckets, slots = 4096, 4
	pairs := []struct {
		name string
		pair hashfn.Pair
	}{
		{"crc-default", hashfn.DefaultPair()},
		{"tabulation", hashfn.Pair{H1: hashfn.NewTabulation(13, 1), H2: hashfn.NewTabulation(13, 2)}},
	}
	keys := benchCuckooKeys(buckets, slots)
	for _, p := range pairs {
		b.Run(p.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var relocations int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := NewCuckoo(p.pair, buckets, slots, 13, 128)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, k := range keys {
					_, _ = c.Insert(k) // chain failures at this load are part of the workload
				}
				relocations = c.Relocations
			}
			b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minserts/s")
			b.ReportMetric(float64(relocations), "relocations/fill")
		})
	}
}
