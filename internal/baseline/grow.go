package baseline

import (
	"fmt"

	"repro/internal/hashfn"
	"repro/internal/table"
	"repro/internal/table/slotarr"
)

// This file implements table.GrowableBackend on the growable §II
// baselines — single-hash and d-left. Both follow the Hash-CAM's scheme:
// BeginGrow swaps in a fresh arena as live and demotes the current one to
// "old"; MigrateStep drains the old arena a bounded number of slots at a
// time, re-placing each occupied entry in the live arena under the
// structure's normal placement policy; FinishGrow drops the drained
// arena. Entries are re-placed by rehashing their key bytes — the arenas
// store 1-byte fingerprint tags, which cannot reconstruct the bucket
// index a doubled geometry needs.
//
// Cuckoo and the conventional arrangement deliberately opt out: a cuckoo
// migration would have to replay kick chains against a half-populated
// arena (a different structure than the paper measures), and the
// conventional arrangement is the fixed-provisioning foil the comparison
// needs. The sharded layer rejects growth config on them up front.

// BeginGrow implements table.GrowableBackend: it allocates the smallest
// power-of-two-factor arena holding at least newCap entries and enters
// migration mode. No entries move yet; MigrateStep drains the retiring
// arena incrementally. Requires the caller's exclusive lock.
func (s *SingleHash) BeginGrow(newCap int) (table.GrowLayout, error) {
	if s.old.Load() != nil {
		return table.GrowLayout{}, fmt.Errorf("baseline: single-hash grow already in flight")
	}
	cur := s.live.Load()
	nb := cur.buckets
	for nb*s.slots < newCap {
		nb <<= 1
	}
	if nb <= cur.buckets {
		return table.GrowLayout{}, fmt.Errorf("baseline: single-hash grow target %d does not exceed current capacity %d",
			newCap, cur.buckets*s.slots)
	}
	ng := &shArena{buckets: nb, store: slotarr.New(nb*s.slots, s.keyLen)}
	s.growCursor = 0
	// Publication order: demote the current arena to old before the new
	// one becomes live, so a racing lock-free reader always sees at least
	// one arena holding every resident entry; the shard seqlock discards
	// any result read mid-swap.
	s.old.Store(cur)
	s.live.Store(ng)
	nLive := uint64(nb * s.slots)
	nOld := uint64(cur.buckets * s.slots)
	return table.GrowLayout{
		Stable:   0,
		NewBound: nLive,
		OldBase:  nLive,
		OldBound: nLive + nOld,
	}, nil
}

// MigrateStep implements table.GrowableBackend: it examines up to budget
// retiring-arena slots from the migration cursor and re-places each
// occupied one in its live-arena bucket. An entry whose live bucket is
// full — possible when hot buckets collide harder in the new geometry —
// is dropped and counted; the caller surfaces the count. Set-before-Clear
// ordering means a concurrent lock-free reader can transiently see both
// copies (it resolves to the live one, searched first) but never neither.
// Requires the caller's exclusive lock.
func (s *SingleHash) MigrateStep(budget int) (moved, dropped int, done bool) {
	og := s.old.Load()
	if og == nil {
		return 0, 0, true
	}
	g := s.live.Load()
	total := uint64(og.buckets * s.slots)
	base := uint64(g.buckets * s.slots)
	s.moveBuf = s.moveBuf[:0]
	for budget > 0 && s.growCursor < total {
		off := s.growCursor
		s.growCursor++
		budget--
		if !og.store.Occupied(int(off)) {
			continue
		}
		key := og.store.Key(int(off))
		w := s.hash.Hash(key)
		slot, ok := g.store.FindFree(hashfn.Reduce(w, g.buckets)*s.slots, s.slots)
		if ok {
			g.store.Set(slot, slotarr.TagOf(w), key)
			g.count++
		}
		og.store.Clear(int(off))
		og.count--
		if !ok {
			dropped++
			continue
		}
		moved++
		s.moveBuf = append(s.moveBuf, [2]uint64{base + off, uint64(slot)})
	}
	if len(s.moveBuf) > 0 && s.relocate != nil {
		s.relocate(s.moveBuf)
	}
	return moved, dropped, s.growCursor >= total
}

// FinishGrow implements table.GrowableBackend: it retires the drained
// arena, returning the table to single-arena operation. Requires the
// caller's exclusive lock.
func (s *SingleHash) FinishGrow() {
	s.old.Store(nil)
	s.growCursor = 0
}

// Growing implements table.GrowableBackend.
func (s *SingleHash) Growing() bool { return s.old.Load() != nil }

// SetRelocateHook implements table.RelocatingBackend: fn observes the
// slot moves each MigrateStep performs (old-region ID → live-region ID,
// per table.GrowLayout), so the expiry side-tables follow migrated
// entries. Single-hash performs no other relocations.
func (s *SingleHash) SetRelocateHook(fn func(moves [][2]uint64)) { s.relocate = fn }

// BeginGrow implements table.GrowableBackend: it allocates the smallest
// power-of-two-factor generation whose d sub-tables hold at least newCap
// entries and enters migration mode. Requires the caller's exclusive
// lock.
func (d *DLeft) BeginGrow(newCap int) (table.GrowLayout, error) {
	if d.old.Load() != nil {
		return table.GrowLayout{}, fmt.Errorf("baseline: d-left grow already in flight")
	}
	cur := d.live.Load()
	n := len(d.hashes)
	nb := cur.buckets
	for n*nb*d.slots < newCap {
		nb <<= 1
	}
	if nb <= cur.buckets {
		return table.GrowLayout{}, fmt.Errorf("baseline: d-left grow target %d does not exceed current capacity %d",
			newCap, n*cur.buckets*d.slots)
	}
	ng := newDLArena(n, nb, d.slots, d.keyLen)
	d.growCursor = 0
	// Same publication order as single-hash: old before live, so a racing
	// lock-free reader never sees an empty pair of generations.
	d.old.Store(cur)
	d.live.Store(ng)
	nLive := uint64(n * ng.slots(d.slots))
	nOld := uint64(n * cur.slots(d.slots))
	return table.GrowLayout{
		Stable:   0,
		NewBound: nLive,
		OldBase:  nLive,
		OldBound: nLive + nOld,
	}, nil
}

// MigrateStep implements table.GrowableBackend: it examines up to budget
// retiring-generation slots from the migration cursor (sub-table-major
// order) and re-places each occupied one under the live generation's
// least-loaded policy — a grow preserves d-left's placement behaviour.
// An entry whose d candidate buckets are all full is dropped and counted.
// Requires the caller's exclusive lock.
func (d *DLeft) MigrateStep(budget int) (moved, dropped int, done bool) {
	og := d.old.Load()
	if og == nil {
		return 0, 0, true
	}
	g := d.live.Load()
	nOldPer := uint64(og.slots(d.slots))
	total := uint64(len(d.hashes)) * nOldPer
	base := d.oldBase(g)
	d.moveBuf = d.moveBuf[:0]
	for budget > 0 && d.growCursor < total {
		off := d.growCursor
		d.growCursor++
		budget--
		t := int(off / nOldPer)
		so := int(off % nOldPer)
		if !og.stores[t].Occupied(so) {
			continue
		}
		key := og.stores[t].Key(so)
		newID, ok := d.placeLeast(g, key, nil)
		og.stores[t].Clear(so)
		og.counts[t]--
		if !ok {
			dropped++
			continue
		}
		moved++
		d.moveBuf = append(d.moveBuf, [2]uint64{base + off, newID})
	}
	if len(d.moveBuf) > 0 && d.relocate != nil {
		d.relocate(d.moveBuf)
	}
	return moved, dropped, d.growCursor >= total
}

// FinishGrow implements table.GrowableBackend: it retires the drained
// generation. Requires the caller's exclusive lock.
func (d *DLeft) FinishGrow() {
	d.old.Store(nil)
	d.growCursor = 0
}

// Growing implements table.GrowableBackend.
func (d *DLeft) Growing() bool { return d.old.Load() != nil }

// SetRelocateHook implements table.RelocatingBackend: fn observes the
// slot moves each MigrateStep performs, so the expiry side-tables follow
// migrated entries. D-left performs no other relocations.
func (d *DLeft) SetRelocateHook(fn func(moves [][2]uint64)) { d.relocate = fn }

// The growable baselines satisfy the grow contract; cuckoo and the
// conventional arrangement intentionally do not (see the file comment).
var (
	_ table.GrowableBackend   = (*SingleHash)(nil)
	_ table.GrowableBackend   = (*DLeft)(nil)
	_ table.RelocatingBackend = (*SingleHash)(nil)
	_ table.RelocatingBackend = (*DLeft)(nil)
)
