package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// Key-hash word bindings for the hashed fast path: which word of a
// precomputed hashfn.KeyHashes a structure's hash function corresponds to.
// khNone marks a function outside the pair — the hashed methods then fall
// back to hashing the key bytes, which is still bit-identical, just not
// free.
const (
	khNone int8 = iota - 1
	khH1
	khH2
)

// SingleHash is the conventional single-hash-function table: one bucket
// array of K-slot buckets; keys that miss their bucket are lost to
// overflow. It is the structure whose collision rate motivates
// multi-choice hashing in §II.
type SingleHash struct {
	hash    hashfn.Func
	khWord  int8 // KeyHashes word of hash (khH1/khH2), or khNone
	buckets int
	slots   int
	keyLen  int

	keys   []byte
	used   []bool
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewSingleHash builds a single-hash table of buckets × slots entries over
// keyLen-byte keys. The hashed fast-path methods on a table built this way
// fall back to hashing the key (the arbitrary Func has no KeyHashes word);
// use NewSingleHashPair to bind the table to a pair's H1 so precomputed
// hashes are consumed directly.
func NewSingleHash(hash hashfn.Func, buckets, slots, keyLen int) (*SingleHash, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if hash == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	return &SingleHash{
		hash:    hash,
		khWord:  khNone,
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		keys:    make([]byte, buckets*slots*keyLen),
		used:    make([]bool, buckets*slots),
	}, nil
}

// NewSingleHashPair builds a single-hash table over pair.H1 whose hashed
// fast path consumes the precomputed KeyHashes.H1 word directly — the
// registry constructor, so a sharded single-hash table hashes each key
// exactly once per operation.
func NewSingleHashPair(pair hashfn.Pair, buckets, slots, keyLen int) (*SingleHash, error) {
	if pair.H1 == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	s, err := NewSingleHash(pair.H1, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	s.khWord = khH1
	return s, nil
}

func checkGeometry(buckets, slots, keyLen int) error {
	switch {
	case buckets <= 0:
		return fmt.Errorf("baseline: bucket count must be positive, got %d", buckets)
	case slots <= 0:
		return fmt.Errorf("baseline: slot count must be positive, got %d", slots)
	case keyLen <= 0:
		return fmt.Errorf("baseline: key length must be positive, got %d", keyLen)
	}
	return nil
}

func (s *SingleHash) slotKey(bucket, slot int) []byte {
	base := (bucket*s.slots + slot) * s.keyLen
	return s.keys[base : base+s.keyLen]
}

func (s *SingleHash) id(bucket, slot int) uint64 {
	return uint64(bucket*s.slots + slot)
}

func (s *SingleHash) checkKey(key []byte) {
	if len(key) != s.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), s.keyLen))
	}
}

// bucketOf derives the key's bucket: from the precomputed word when the
// table is pair-bound and the caller supplied hashes, otherwise by hashing
// the key bytes.
func (s *SingleHash) bucketOf(key []byte, kh *hashfn.KeyHashes) int {
	if kh != nil {
		switch s.khWord {
		case khH1:
			return hashfn.Reduce(kh.H1, s.buckets)
		case khH2:
			return hashfn.Reduce(kh.H2, s.buckets)
		}
	}
	return hashfn.Reduce(s.hash.Hash(key), s.buckets)
}

// lookupAt scans bucket b for key; probe accounting matches Lookup.
func (s *SingleHash) lookupAt(key []byte, b int) (uint64, bool) {
	s.probes.Add(1)
	for slot := 0; slot < s.slots; slot++ {
		if s.used[b*s.slots+slot] && bytes.Equal(s.slotKey(b, slot), key) {
			return s.id(b, slot), true
		}
	}
	return 0, false
}

// Lookup implements LookupTable.
func (s *SingleHash) Lookup(key []byte) (uint64, bool) {
	s.checkKey(key)
	return s.lookupAt(key, s.bucketOf(key, nil))
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (s *SingleHash) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	s.checkKey(key)
	return s.lookupAt(key, s.bucketOf(key, &kh))
}

// insertAt places key in bucket b unless present; the duplicate pre-check
// reuses the derived bucket, so a byte-key Insert hashes once (not twice as
// it historically did) and a hashed insert not at all.
func (s *SingleHash) insertAt(key []byte, b int) (uint64, error) {
	if id, ok := s.lookupAt(key, b); ok {
		return id, nil
	}
	for slot := 0; slot < s.slots; slot++ {
		if !s.used[b*s.slots+slot] {
			copy(s.slotKey(b, slot), key)
			s.used[b*s.slots+slot] = true
			s.count++
			s.probes.Add(1)
			return s.id(b, slot), nil
		}
	}
	return 0, fmt.Errorf("baseline: single-hash bucket %d overflow: %w", b, ErrTableFull)
}

// Insert implements LookupTable.
func (s *SingleHash) Insert(key []byte) (uint64, error) {
	s.checkKey(key)
	return s.insertAt(key, s.bucketOf(key, nil))
}

// InsertHashed implements the hashed fast path.
func (s *SingleHash) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	s.checkKey(key)
	return s.insertAt(key, s.bucketOf(key, &kh))
}

// deleteAt removes key from bucket b if present.
func (s *SingleHash) deleteAt(key []byte, b int) bool {
	s.probes.Add(1)
	for slot := 0; slot < s.slots; slot++ {
		if s.used[b*s.slots+slot] && bytes.Equal(s.slotKey(b, slot), key) {
			s.used[b*s.slots+slot] = false
			s.count--
			return true
		}
	}
	return false
}

// Delete implements LookupTable.
func (s *SingleHash) Delete(key []byte) bool {
	s.checkKey(key)
	return s.deleteAt(key, s.bucketOf(key, nil))
}

// DeleteHashed implements the hashed fast path.
func (s *SingleHash) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	s.checkKey(key)
	return s.deleteAt(key, s.bucketOf(key, &kh))
}

// Len implements LookupTable.
func (s *SingleHash) Len() int { return s.count }

// Probes implements LookupTable.
func (s *SingleHash) Probes() int64 { return s.probes.Load() }

// Name implements LookupTable.
func (s *SingleHash) Name() string { return "single-hash" }
