package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/table/slotarr"
)

// Key-hash word bindings for the hashed fast path: which word of a
// precomputed hashfn.KeyHashes a structure's hash function corresponds to.
// khNone marks a function outside the pair — the hashed methods then fall
// back to hashing the key bytes, which is still bit-identical, just not
// free.
const (
	khNone int8 = iota - 1
	khH1
	khH2
)

// SingleHash is the conventional single-hash-function table: one bucket
// array of K-slot buckets; keys that miss their bucket are lost to
// overflow. It is the structure whose collision rate motivates
// multi-choice hashing in §II.
type SingleHash struct {
	hash    hashfn.Func
	khWord  int8 // KeyHashes word of hash (khH1/khH2), or khNone
	buckets int
	slots   int
	keyLen  int

	store  *slotarr.Store // inline keys + fingerprint tags, buckets × slots
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewSingleHash builds a single-hash table of buckets × slots entries over
// keyLen-byte keys. The hashed fast-path methods on a table built this way
// fall back to hashing the key (the arbitrary Func has no KeyHashes word);
// use NewSingleHashPair to bind the table to a pair's H1 so precomputed
// hashes are consumed directly.
func NewSingleHash(hash hashfn.Func, buckets, slots, keyLen int) (*SingleHash, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if hash == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	return &SingleHash{
		hash:    hash,
		khWord:  khNone,
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		store:   slotarr.New(buckets*slots, keyLen),
	}, nil
}

// NewSingleHashPair builds a single-hash table over pair.H1 whose hashed
// fast path consumes the precomputed KeyHashes.H1 word directly — the
// registry constructor, so a sharded single-hash table hashes each key
// exactly once per operation.
func NewSingleHashPair(pair hashfn.Pair, buckets, slots, keyLen int) (*SingleHash, error) {
	if pair.H1 == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	s, err := NewSingleHash(pair.H1, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	s.khWord = khH1
	return s, nil
}

func checkGeometry(buckets, slots, keyLen int) error {
	switch {
	case buckets <= 0:
		return fmt.Errorf("baseline: bucket count must be positive, got %d", buckets)
	case slots <= 0:
		return fmt.Errorf("baseline: slot count must be positive, got %d", slots)
	case keyLen <= 0:
		return fmt.Errorf("baseline: key length must be positive, got %d", keyLen)
	}
	return nil
}

func (s *SingleHash) checkKey(key []byte) {
	if len(key) != s.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), s.keyLen))
	}
}

// bucketOf derives the key's bucket and fingerprint tag from one hash
// word: the precomputed word when the table is pair-bound and the caller
// supplied hashes, otherwise by hashing the key bytes. The bucket consumes
// the word's low bits, the tag its top bits, so both come from the same
// single evaluation.
func (s *SingleHash) bucketOf(key []byte, kh *hashfn.KeyHashes) (int, uint8) {
	if kh != nil {
		switch s.khWord {
		case khH1:
			return hashfn.Reduce(kh.H1, s.buckets), slotarr.TagOf(kh.H1)
		case khH2:
			return hashfn.Reduce(kh.H2, s.buckets), slotarr.TagOf(kh.H2)
		}
	}
	w := s.hash.Hash(key)
	return hashfn.Reduce(w, s.buckets), slotarr.TagOf(w)
}

// readAt scans bucket b for key via the tag-word probe with zero stats
// writes — the lock-free read core. The candidate loop runs in this frame
// over the inlinable TagMatches leaf (FindTagged for the rare >8-slot
// geometry).
func (s *SingleHash) readAt(key []byte, b int, tag uint8) (uint64, bool) {
	base := b * s.slots
	if s.slots > 8 {
		if slot, ok := s.store.FindTagged(base, s.slots, tag, key); ok {
			return uint64(slot), true
		}
		return 0, false
	}
	for m := s.store.TagMatches(base, s.slots, tag); m != 0; {
		var off int
		off, m = slotarr.NextMatch(m)
		if bytes.Equal(s.store.Key(base+off), key) {
			return uint64(base + off), true
		}
	}
	return 0, false
}

// lookupAt is readAt plus the accounting: the single bucket probe is
// charged up front, matching the historical cost.
func (s *SingleHash) lookupAt(key []byte, b int, tag uint8) (uint64, bool) {
	s.probes.Add(1)
	return s.readAt(key, b, tag)
}

// Lookup implements LookupTable.
func (s *SingleHash) Lookup(key []byte) (uint64, bool) {
	s.checkKey(key)
	b, tag := s.bucketOf(key, nil)
	return s.lookupAt(key, b, tag)
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (s *SingleHash) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	s.checkKey(key)
	b, tag := s.bucketOf(key, &kh)
	return s.lookupAt(key, b, tag)
}

// insertAt places key in bucket b unless present; the duplicate pre-check
// reuses the derived bucket and tag, so a byte-key Insert hashes once (not
// twice as it historically did) and a hashed insert not at all.
func (s *SingleHash) insertAt(key []byte, b int, tag uint8) (uint64, error) {
	if id, ok := s.lookupAt(key, b, tag); ok {
		return id, nil
	}
	if slot, ok := s.store.FindFree(b*s.slots, s.slots); ok {
		s.store.Set(slot, tag, key)
		s.count++
		s.probes.Add(1)
		return uint64(slot), nil
	}
	return 0, fmt.Errorf("baseline: single-hash bucket %d overflow: %w", b, ErrTableFull)
}

// Insert implements LookupTable.
func (s *SingleHash) Insert(key []byte) (uint64, error) {
	s.checkKey(key)
	b, tag := s.bucketOf(key, nil)
	return s.insertAt(key, b, tag)
}

// InsertHashed implements the hashed fast path.
func (s *SingleHash) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	s.checkKey(key)
	b, tag := s.bucketOf(key, &kh)
	return s.insertAt(key, b, tag)
}

// deleteAt removes key from bucket b if present. The single bucket probe
// is charged by lookupAt, matching the historical one-probe delete cost.
func (s *SingleHash) deleteAt(key []byte, b int, tag uint8) bool {
	if id, ok := s.lookupAt(key, b, tag); ok {
		s.store.Clear(int(id))
		s.count--
		return true
	}
	return false
}

// Delete implements LookupTable.
func (s *SingleHash) Delete(key []byte) bool {
	s.checkKey(key)
	b, tag := s.bucketOf(key, nil)
	return s.deleteAt(key, b, tag)
}

// DeleteHashed implements the hashed fast path.
func (s *SingleHash) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	s.checkKey(key)
	b, tag := s.bucketOf(key, &kh)
	return s.deleteAt(key, b, tag)
}

// Len implements LookupTable.
func (s *SingleHash) Len() int { return s.count }

// Probes implements LookupTable.
func (s *SingleHash) Probes() int64 { return s.probes.Load() }

// Name implements LookupTable.
func (s *SingleHash) Name() string { return "single-hash" }

// PrefetchHashed implements table.PrefetchBackend for the pair-bound
// table; an arbitrary-Func table has no precomputed word to reduce and
// touches nothing.
func (s *SingleHash) PrefetchHashed(kh hashfn.KeyHashes) uint64 {
	switch s.khWord {
	case khH1:
		return s.store.Touch(hashfn.Reduce(kh.H1, s.buckets) * s.slots)
	case khH2:
		return s.store.Touch(hashfn.Reduce(kh.H2, s.buckets) * s.slots)
	}
	return 0
}

// ReadHashed implements table.OptimisticBackend: every single-hash lookup
// costs exactly one bucket probe, so the outcome token is always 1.
func (s *SingleHash) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	s.checkKey(key)
	b, tag := s.bucketOf(key, &kh)
	id, ok := s.readAt(key, b, tag)
	return id, 1, ok
}

// CommitReads implements table.OptimisticBackend.
func (s *SingleHash) CommitReads(outcome uint8, n int64) {
	s.probes.Add(int64(outcome) * n)
}

// ReadLockFree implements table.OptimisticBackend: the inline slot path
// only.
func (s *SingleHash) ReadLockFree() bool { return s.store.Inline() }

// StorageBytes implements table.StorageSized: the slot arena.
func (s *SingleHash) StorageBytes() int64 { return s.store.Bytes() }
