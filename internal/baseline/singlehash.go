package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
)

// SingleHash is the conventional single-hash-function table: one bucket
// array of K-slot buckets; keys that miss their bucket are lost to
// overflow. It is the structure whose collision rate motivates
// multi-choice hashing in §II.
type SingleHash struct {
	hash    hashfn.Func
	buckets int
	slots   int
	keyLen  int

	keys   []byte
	used   []bool
	count  int
	probes atomic.Int64 // atomic: lookups may run under a shared lock
}

// NewSingleHash builds a single-hash table of buckets × slots entries over
// keyLen-byte keys.
func NewSingleHash(hash hashfn.Func, buckets, slots, keyLen int) (*SingleHash, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if hash == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	return &SingleHash{
		hash:    hash,
		buckets: buckets,
		slots:   slots,
		keyLen:  keyLen,
		keys:    make([]byte, buckets*slots*keyLen),
		used:    make([]bool, buckets*slots),
	}, nil
}

func checkGeometry(buckets, slots, keyLen int) error {
	switch {
	case buckets <= 0:
		return fmt.Errorf("baseline: bucket count must be positive, got %d", buckets)
	case slots <= 0:
		return fmt.Errorf("baseline: slot count must be positive, got %d", slots)
	case keyLen <= 0:
		return fmt.Errorf("baseline: key length must be positive, got %d", keyLen)
	}
	return nil
}

func (s *SingleHash) slotKey(bucket, slot int) []byte {
	base := (bucket*s.slots + slot) * s.keyLen
	return s.keys[base : base+s.keyLen]
}

func (s *SingleHash) id(bucket, slot int) uint64 {
	return uint64(bucket*s.slots + slot)
}

func (s *SingleHash) checkKey(key []byte) {
	if len(key) != s.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), s.keyLen))
	}
}

// Lookup implements LookupTable.
func (s *SingleHash) Lookup(key []byte) (uint64, bool) {
	s.checkKey(key)
	s.probes.Add(1)
	b := hashfn.Reduce(s.hash.Hash(key), s.buckets)
	for slot := 0; slot < s.slots; slot++ {
		if s.used[b*s.slots+slot] && bytes.Equal(s.slotKey(b, slot), key) {
			return s.id(b, slot), true
		}
	}
	return 0, false
}

// Insert implements LookupTable.
func (s *SingleHash) Insert(key []byte) (uint64, error) {
	if id, ok := s.Lookup(key); ok {
		return id, nil
	}
	b := hashfn.Reduce(s.hash.Hash(key), s.buckets)
	for slot := 0; slot < s.slots; slot++ {
		if !s.used[b*s.slots+slot] {
			copy(s.slotKey(b, slot), key)
			s.used[b*s.slots+slot] = true
			s.count++
			s.probes.Add(1)
			return s.id(b, slot), nil
		}
	}
	return 0, fmt.Errorf("baseline: single-hash bucket %d overflow: %w", b, ErrTableFull)
}

// Delete implements LookupTable.
func (s *SingleHash) Delete(key []byte) bool {
	s.checkKey(key)
	s.probes.Add(1)
	b := hashfn.Reduce(s.hash.Hash(key), s.buckets)
	for slot := 0; slot < s.slots; slot++ {
		if s.used[b*s.slots+slot] && bytes.Equal(s.slotKey(b, slot), key) {
			s.used[b*s.slots+slot] = false
			s.count--
			return true
		}
	}
	return false
}

// Len implements LookupTable.
func (s *SingleHash) Len() int { return s.count }

// Probes implements LookupTable.
func (s *SingleHash) Probes() int64 { return s.probes.Load() }

// Name implements LookupTable.
func (s *SingleHash) Name() string { return "single-hash" }
