package baseline

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/table/slotarr"
)

// Key-hash word bindings for the hashed fast path: which word of a
// precomputed hashfn.KeyHashes a structure's hash function corresponds to.
// khNone marks a function outside the pair — the hashed methods then fall
// back to hashing the key bytes, which is still bit-identical, just not
// free.
const (
	khNone int8 = iota - 1
	khH1
	khH2
)

// shArena is one single-hash bucket array: the slot arena plus its entry
// count. The table holds a live arena and, mid-grow, a retiring one (see
// grow.go); counts live here so each arena's occupancy follows it through
// the swap.
type shArena struct {
	buckets int
	store   *slotarr.Store // inline keys + fingerprint tags, buckets × slots
	count   int
}

// SingleHash is the conventional single-hash-function table: one bucket
// array of K-slot buckets; keys that miss their bucket are lost to
// overflow. It is the structure whose collision rate motivates
// multi-choice hashing in §II.
type SingleHash struct {
	hash   hashfn.Func
	khWord int8 // KeyHashes word of hash (khH1/khH2), or khNone
	slots  int
	keyLen int
	// conBuckets is the construction-time bucket count — the minimum any
	// arena will ever have (grows only enlarge) — from which StripeBound
	// derives.
	conBuckets int

	// live is the arena inserts target; old is non-nil only while a grow
	// is migrating entries out of the previous arena (grow.go). Atomic
	// pointers so the sharded layer's lock-free readers can race the swap;
	// all writes happen under the caller's exclusive lock.
	live, old atomic.Pointer[shArena]
	probes    atomic.Int64 // atomic: lookups may run under a shared lock

	growCursor uint64
	moveBuf    [][2]uint64
	relocate   func([][2]uint64)
}

// bucketSearch scans one K-slot bucket of st for key via the tag-word
// probe (FindTagged for the rare >8-slot geometry), returning the absolute
// arena offset. Zero stats writes — shared by every baseline's lock-free
// read core.
func bucketSearch(st *slotarr.Store, base, slots int, tag uint8, key []byte) (int, bool) {
	if slots > 8 {
		return st.FindTagged(base, slots, tag, key)
	}
	// Candidate loop in this frame over the inlinable TagMatches leaf.
	for m := st.TagMatches(base, slots, tag); m != 0; {
		var off int
		off, m = slotarr.NextMatch(m)
		if bytes.Equal(st.Key(base+off), key) {
			return base + off, true
		}
	}
	return 0, false
}

// NewSingleHash builds a single-hash table of buckets × slots entries over
// keyLen-byte keys. The hashed fast-path methods on a table built this way
// fall back to hashing the key (the arbitrary Func has no KeyHashes word);
// use NewSingleHashPair to bind the table to a pair's H1 so precomputed
// hashes are consumed directly.
func NewSingleHash(hash hashfn.Func, buckets, slots, keyLen int) (*SingleHash, error) {
	if err := checkGeometry(buckets, slots, keyLen); err != nil {
		return nil, err
	}
	if hash == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	s := &SingleHash{
		hash:       hash,
		khWord:     khNone,
		slots:      slots,
		keyLen:     keyLen,
		conBuckets: buckets,
	}
	s.live.Store(&shArena{buckets: buckets, store: slotarr.New(buckets*slots, keyLen)})
	return s, nil
}

// StripeBound implements table.StripedBackend: the construction-time
// bucket count when it is a power of two and the hash is bound to a
// KeyHashes word (an unbound function hashes key bytes the sharded layer
// never sees), else 1.
func (s *SingleHash) StripeBound() int {
	if s.khWord == khNone || s.conBuckets&(s.conBuckets-1) != 0 {
		return 1
	}
	return s.conBuckets
}

// SetEscalateHook implements table.StripedBackend as a no-op: every
// single-hash mutation lands in the key's one candidate bucket, and
// migration re-placements run under the sharded layer's global sections.
func (s *SingleHash) SetEscalateHook(func()) {}

// NewSingleHashPair builds a single-hash table over pair.H1 whose hashed
// fast path consumes the precomputed KeyHashes.H1 word directly — the
// registry constructor, so a sharded single-hash table hashes each key
// exactly once per operation.
func NewSingleHashPair(pair hashfn.Pair, buckets, slots, keyLen int) (*SingleHash, error) {
	if pair.H1 == nil {
		return nil, fmt.Errorf("baseline: single-hash requires a hash function")
	}
	s, err := NewSingleHash(pair.H1, buckets, slots, keyLen)
	if err != nil {
		return nil, err
	}
	s.khWord = khH1
	return s, nil
}

func checkGeometry(buckets, slots, keyLen int) error {
	switch {
	case buckets <= 0:
		return fmt.Errorf("baseline: bucket count must be positive, got %d", buckets)
	case slots <= 0:
		return fmt.Errorf("baseline: slot count must be positive, got %d", slots)
	case keyLen <= 0:
		return fmt.Errorf("baseline: key length must be positive, got %d", keyLen)
	}
	return nil
}

func (s *SingleHash) checkKey(key []byte) {
	if len(key) != s.keyLen {
		panic(fmt.Sprintf("baseline: key of %d bytes, table configured for %d", len(key), s.keyLen))
	}
}

// wordOf derives the key's hash word and fingerprint tag: the precomputed
// word when the table is pair-bound and the caller supplied hashes,
// otherwise by hashing the key bytes. Callers reduce the word against the
// arena they are probing — the live and retiring arenas have different
// bucket counts, so the reduction cannot be folded in here.
func (s *SingleHash) wordOf(key []byte, kh *hashfn.KeyHashes) (uint64, uint8) {
	if kh != nil {
		switch s.khWord {
		case khH1:
			return kh.H1, slotarr.TagOf(kh.H1)
		case khH2:
			return kh.H2, slotarr.TagOf(kh.H2)
		}
	}
	w := s.hash.Hash(key)
	return w, slotarr.TagOf(w)
}

// read resolves key against the live arena and then, mid-migration, the
// retiring one, with zero stats writes — the lock-free read core. The
// returned token is the bucket-probe count the access model charges: 1
// for the single-arena case, 2 when the retiring arena was consulted.
func (s *SingleHash) read(key []byte, w uint64, tag uint8) (uint64, uint8, bool) {
	g := s.live.Load()
	if off, ok := bucketSearch(g.store, hashfn.Reduce(w, g.buckets)*s.slots, s.slots, tag, key); ok {
		return uint64(off), 1, true
	}
	og := s.old.Load()
	if og == nil {
		return 0, 1, false
	}
	if off, ok := bucketSearch(og.store, hashfn.Reduce(w, og.buckets)*s.slots, s.slots, tag, key); ok {
		return s.oldID(g, uint64(off)), 2, true
	}
	return 0, 2, false
}

// oldID re-addresses a retiring-arena offset into the region above the
// live arena's IDs (table.GrowLayout's OldBase).
func (s *SingleHash) oldID(g *shArena, off uint64) uint64 {
	return uint64(g.buckets*s.slots) + off
}

// lookup is read plus the accounting, charged in one atomic add at exit.
func (s *SingleHash) lookup(key []byte, kh *hashfn.KeyHashes) (uint64, bool) {
	w, tag := s.wordOf(key, kh)
	id, probes, ok := s.read(key, w, tag)
	s.probes.Add(int64(probes))
	return id, ok
}

// Lookup implements LookupTable.
func (s *SingleHash) Lookup(key []byte) (uint64, bool) {
	s.checkKey(key)
	return s.lookup(key, nil)
}

// LookupHashed implements the hashed fast path (table.HashedBackend).
func (s *SingleHash) LookupHashed(key []byte, kh hashfn.KeyHashes) (uint64, bool) {
	s.checkKey(key)
	return s.lookup(key, &kh)
}

// insert places key in its live-arena bucket unless present in either
// arena; the duplicate pre-check reuses the derived word and tag, so a
// byte-key Insert hashes once and a hashed insert not at all. Inserts
// never target the retiring arena — it only drains.
func (s *SingleHash) insert(key []byte, kh *hashfn.KeyHashes) (uint64, error) {
	w, tag := s.wordOf(key, kh)
	id, probes, ok := s.read(key, w, tag)
	s.probes.Add(int64(probes))
	if ok {
		return id, nil
	}
	g := s.live.Load()
	b := hashfn.Reduce(w, g.buckets)
	if slot, ok := g.store.FindFree(b*s.slots, s.slots); ok {
		g.store.Set(slot, tag, key)
		g.count++
		s.probes.Add(1)
		return uint64(slot), nil
	}
	return 0, fmt.Errorf("baseline: single-hash bucket %d overflow: %w", b, ErrTableFull)
}

// Insert implements LookupTable.
func (s *SingleHash) Insert(key []byte) (uint64, error) {
	s.checkKey(key)
	return s.insert(key, nil)
}

// InsertHashed implements the hashed fast path.
func (s *SingleHash) InsertHashed(key []byte, kh hashfn.KeyHashes) (uint64, error) {
	s.checkKey(key)
	return s.insert(key, &kh)
}

// clearID reclaims the slot behind a read-resolved ID, decrementing the
// owning arena's count. Requires the caller's exclusive lock.
func (s *SingleHash) clearID(id uint64) {
	g := s.live.Load()
	n := uint64(g.buckets * s.slots)
	if id < n {
		g.store.Clear(int(id))
		g.count--
		return
	}
	og := s.old.Load()
	og.store.Clear(int(id - n))
	og.count--
}

// delete removes key from whichever arena holds it. The bucket probes are
// charged by the read, matching the historical one-probe delete cost in
// the single-arena case.
func (s *SingleHash) delete(key []byte, kh *hashfn.KeyHashes) bool {
	w, tag := s.wordOf(key, kh)
	id, probes, ok := s.read(key, w, tag)
	s.probes.Add(int64(probes))
	if !ok {
		return false
	}
	s.clearID(id)
	return true
}

// Delete implements LookupTable.
func (s *SingleHash) Delete(key []byte) bool {
	s.checkKey(key)
	return s.delete(key, nil)
}

// DeleteHashed implements the hashed fast path.
func (s *SingleHash) DeleteHashed(key []byte, kh hashfn.KeyHashes) bool {
	s.checkKey(key)
	return s.delete(key, &kh)
}

// Len implements LookupTable: entries across both arenas.
func (s *SingleHash) Len() int {
	n := s.live.Load().count
	if og := s.old.Load(); og != nil {
		n += og.count
	}
	return n
}

// Probes implements LookupTable.
func (s *SingleHash) Probes() int64 { return s.probes.Load() }

// Name implements LookupTable.
func (s *SingleHash) Name() string { return "single-hash" }

// PrefetchHashed implements table.PrefetchBackend for the pair-bound
// table; an arbitrary-Func table has no precomputed word to reduce and
// touches nothing. Only the live arena — the insert/lookup first stop —
// is touched.
func (s *SingleHash) PrefetchHashed(kh hashfn.KeyHashes) uint64 {
	g := s.live.Load()
	switch s.khWord {
	case khH1:
		return g.store.Touch(hashfn.Reduce(kh.H1, g.buckets) * s.slots)
	case khH2:
		return g.store.Touch(hashfn.Reduce(kh.H2, g.buckets) * s.slots)
	}
	return 0
}

// ReadHashed implements table.OptimisticBackend: the outcome token is the
// bucket-probe count — 1 normally, 2 when the mid-migration scan also
// consulted the retiring arena.
func (s *SingleHash) ReadHashed(key []byte, kh hashfn.KeyHashes) (uint64, uint8, bool) {
	s.checkKey(key)
	w, tag := s.wordOf(key, &kh)
	return s.read(key, w, tag)
}

// CommitReads implements table.OptimisticBackend.
func (s *SingleHash) CommitReads(outcome uint8, n int64) {
	s.probes.Add(int64(outcome) * n)
}

// ReadLockFree implements table.OptimisticBackend: the inline slot path
// only (both arenas share the key width, so one check covers the pair).
func (s *SingleHash) ReadLockFree() bool { return s.live.Load().store.Inline() }

// StorageBytes implements table.StorageSized: the slot arenas.
func (s *SingleHash) StorageBytes() int64 {
	n := s.live.Load().store.Bytes()
	if og := s.old.Load(); og != nil {
		n += og.store.Bytes()
	}
	return n
}
