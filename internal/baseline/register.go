package baseline

import (
	"repro/internal/hashcam"
	"repro/internal/table"
)

// This file plugs every §II baseline into the table registry, so the
// sharded engine and the bench CLI can select them by name next to the
// paper's "hashcam" (registered by the hashcam package itself).
// Every registered backend provides the hashed fast path, so the sharded
// engine computes exactly one hash pass per key regardless of backend.
var (
	_ table.HashedBackend = (*SingleHash)(nil)
	_ table.HashedBackend = (*DLeft)(nil)
	_ table.HashedBackend = (*Cuckoo)(nil)
	_ table.HashedBackend = (*ConvHashCAM)(nil)

	_ table.PrefetchBackend = (*SingleHash)(nil)
	_ table.PrefetchBackend = (*DLeft)(nil)
	_ table.PrefetchBackend = (*Cuckoo)(nil)
	_ table.PrefetchBackend = (*ConvHashCAM)(nil)

	_ table.StorageSized = (*SingleHash)(nil)
	_ table.StorageSized = (*DLeft)(nil)
	_ table.StorageSized = (*Cuckoo)(nil)
	_ table.StorageSized = (*ConvHashCAM)(nil)

	_ table.OptimisticBackend = (*SingleHash)(nil)
	_ table.OptimisticBackend = (*DLeft)(nil)
	_ table.OptimisticBackend = (*Cuckoo)(nil)
	_ table.OptimisticBackend = (*ConvHashCAM)(nil)

	_ table.StripedBackend = (*SingleHash)(nil)
	_ table.StripedBackend = (*DLeft)(nil)
	_ table.StripedBackend = (*Cuckoo)(nil)
	_ table.StripedBackend = (*ConvHashCAM)(nil)
)

func init() {
	// Every constructor validates the generic config first (the same check
	// table.New and table.NewSharded run), so an out-of-range capacity is
	// an error on every path — never a silent clamp.
	table.Register("singlehash", func(cfg table.Config) (table.Backend, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return NewSingleHashPair(cfg.Hash, cfg.BucketsFor(1), cfg.SlotsPerBucket, cfg.KeyLen)
	})
	table.Register("dleft", func(cfg table.Config) (table.Backend, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		return NewDLeftPair(cfg.Hash, cfg.BucketsFor(2), cfg.SlotsPerBucket, cfg.KeyLen)
	})
	table.Register("cuckoo", func(cfg table.Config) (table.Backend, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		// maxKick 128 bounds the eviction chain well past the loads the
		// engine drives; beyond it the structure is effectively full.
		return NewCuckoo(cfg.Hash, cfg.BucketsFor(2), cfg.SlotsPerBucket, cfg.KeyLen, 128)
	})
	table.Register("convhashcam", func(cfg table.Config) (table.Backend, error) {
		hcfg, err := hashcam.BackendConfig(cfg) // validates cfg itself
		if err != nil {
			return nil, err
		}
		return NewConvHashCAM(hcfg)
	})
}
