package baseline

import (
	"repro/internal/hashcam"
	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file plugs every §II baseline into the table registry, so the
// sharded engine and the bench CLI can select them by name next to the
// paper's "hashcam" (registered by the hashcam package itself).
func init() {
	table.Register("singlehash", func(cfg table.Config) (table.Backend, error) {
		return NewSingleHash(cfg.Hash.H1, cfg.BucketsFor(1), cfg.SlotsPerBucket, cfg.KeyLen)
	})
	table.Register("dleft", func(cfg table.Config) (table.Backend, error) {
		return NewDLeft([]hashfn.Func{cfg.Hash.H1, cfg.Hash.H2},
			cfg.BucketsFor(2), cfg.SlotsPerBucket, cfg.KeyLen)
	})
	table.Register("cuckoo", func(cfg table.Config) (table.Backend, error) {
		// maxKick 128 bounds the eviction chain well past the loads the
		// engine drives; beyond it the structure is effectively full.
		return NewCuckoo(cfg.Hash, cfg.BucketsFor(2), cfg.SlotsPerBucket, cfg.KeyLen, 128)
	})
	table.Register("convhashcam", func(cfg table.Config) (table.Backend, error) {
		return NewConvHashCAM(hashcam.BackendConfig(cfg))
	})
}
