package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/hashcam"
	"repro/internal/hashfn"
)

func key13(i uint64) []byte {
	k := make([]byte, 13)
	binary.LittleEndian.PutUint64(k, i)
	return k
}

// tables returns one instance of every structure at comparable geometry.
func tables(t *testing.T) []LookupTable {
	t.Helper()
	pair := hashfn.DefaultPair()
	sh, err := NewSingleHash(pair.H1, 256, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := NewDLeft([]hashfn.Func{pair.H1, pair.H2, &hashfn.Mix64{Seed: 3}}, 128, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := NewCuckoo(pair, 256, 2, 13, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hashcam.DefaultConfig()
	cfg.Buckets = 128
	cfg.CAMCapacity = 32
	conv, err := NewConvHashCAM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := NewProposed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []LookupTable{sh, dl, ck, conv, prop}
}

func TestBasicSemanticsAllStructures(t *testing.T) {
	for _, tbl := range tables(t) {
		t.Run(tbl.Name(), func(t *testing.T) {
			k := key13(1234)
			if _, ok := tbl.Lookup(k); ok {
				t.Fatal("hit on empty table")
			}
			id, err := tbl.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := tbl.Lookup(k)
			if !ok || got != id {
				t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
			}
			id2, err := tbl.Insert(k)
			if err != nil || id2 != id {
				t.Fatalf("duplicate insert = (%d,%v), want (%d,nil)", id2, err, id)
			}
			if tbl.Len() != 1 {
				t.Fatalf("Len = %d, want 1", tbl.Len())
			}
			if !tbl.Delete(k) {
				t.Fatal("Delete missed")
			}
			if _, ok := tbl.Lookup(k); ok {
				t.Fatal("hit after delete")
			}
			if tbl.Delete(k) {
				t.Fatal("double delete succeeded")
			}
			if tbl.Probes() <= 0 {
				t.Fatal("probe accounting inactive")
			}
		})
	}
}

func TestBulkIntegrityAllStructures(t *testing.T) {
	const n = 500 // ~half capacity of the smallest structure
	for _, tbl := range tables(t) {
		t.Run(tbl.Name(), func(t *testing.T) {
			ids := make(map[uint64]uint64, n)
			for i := uint64(0); i < n; i++ {
				id, err := tbl.Insert(key13(i))
				if err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				ids[i] = id
			}
			if tbl.Len() != n {
				t.Fatalf("Len = %d, want %d", tbl.Len(), n)
			}
			for i := uint64(0); i < n; i++ {
				id, ok := tbl.Lookup(key13(i))
				if !ok || id != ids[i] {
					t.Fatalf("key %d: got (%d,%v), want (%d,true)", i, id, ok, ids[i])
				}
			}
			// Absent keys must miss.
			for i := uint64(n); i < n+100; i++ {
				if _, ok := tbl.Lookup(key13(i)); ok {
					t.Fatalf("phantom hit for absent key %d", i)
				}
			}
		})
	}
}

func TestModelPropertyAllStructures(t *testing.T) {
	build := func() []LookupTable {
		pair := hashfn.DefaultPair()
		sh, _ := NewSingleHash(pair.H1, 64, 4, 13)
		dl, _ := NewDLeft([]hashfn.Func{pair.H1, pair.H2}, 32, 4, 13)
		ck, _ := NewCuckoo(pair, 64, 2, 13, 32)
		cfg := hashcam.DefaultConfig()
		cfg.Buckets = 32
		cfg.CAMCapacity = 16
		conv, _ := NewConvHashCAM(cfg)
		prop, _ := NewProposed(cfg)
		return []LookupTable{sh, dl, ck, conv, prop}
	}
	for _, name := range []string{"single-hash", "2-left", "cuckoo", "conventional-hashcam", "proposed-hashcam"} {
		t.Run(name, func(t *testing.T) {
			idx := map[string]int{"single-hash": 0, "2-left": 1, "cuckoo": 2, "conventional-hashcam": 3, "proposed-hashcam": 4}[name]
			f := func(ops []uint16) bool {
				tbl := build()[idx]
				model := make(map[uint64]uint64)
				corrupt := false // set after a failed cuckoo insert
				for _, op := range ops {
					keyIdx := uint64(op % 96)
					k := key13(keyIdx)
					switch (op >> 8) % 3 {
					case 0:
						id, err := tbl.Insert(k)
						if err != nil {
							if name == "cuckoo" {
								// A failed cuckoo insert may orphan one
								// resident key; stop model checking.
								corrupt = true
							}
							continue
						}
						if prev, ok := model[keyIdx]; ok && prev != id && !corrupt {
							return false
						}
						model[keyIdx] = id
					case 1:
						deleted := tbl.Delete(k)
						_, existed := model[keyIdx]
						if !corrupt && deleted != existed {
							return false
						}
						delete(model, keyIdx)
					case 2:
						id, ok := tbl.Lookup(k)
						want, existed := model[keyIdx]
						if !corrupt && (ok != existed || (ok && id != want)) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSingleHashOverflows(t *testing.T) {
	// One bucket of 4 slots: the fifth colliding key must fail — the §II
	// motivation for multi-choice schemes.
	sh, _ := NewSingleHash(&hashfn.Mix64{}, 1, 4, 13)
	for i := uint64(0); i < 4; i++ {
		if _, err := sh.Insert(key13(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := sh.Insert(key13(5)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("overflow insert = %v, want ErrTableFull", err)
	}
}

func TestCuckooRelocatesUnderPressure(t *testing.T) {
	pair := hashfn.DefaultPair()
	ck, _ := NewCuckoo(pair, 128, 1, 13, 500)
	// Load to ~85% of the 256 slots; kick-outs must happen and all
	// successfully inserted keys must remain reachable.
	var placed []uint64
	for i := uint64(0); i < 218; i++ {
		if _, err := ck.Insert(key13(i)); err == nil {
			placed = append(placed, i)
		} else {
			break // one failure orphans a key; stop the experiment here
		}
	}
	if len(placed) < 150 {
		t.Fatalf("cuckoo placed only %d keys before failing", len(placed))
	}
	if ck.Relocations == 0 {
		t.Fatal("no relocations at 85% load; kick-out path untested")
	}
	for _, i := range placed {
		if _, ok := ck.Lookup(key13(i)); !ok {
			t.Fatalf("key %d lost after relocations", i)
		}
	}
}

func TestCuckooLookupIsTwoProbes(t *testing.T) {
	ck, _ := NewCuckoo(hashfn.DefaultPair(), 64, 2, 13, 16)
	ck.Insert(key13(1))
	before := ck.Probes()
	ck.Lookup(key13(999)) // miss: still exactly two probes
	if got := ck.Probes() - before; got != 2 {
		t.Fatalf("cuckoo miss cost %d probes, want 2", got)
	}
}

func TestDLeftBalancesLoad(t *testing.T) {
	pair := hashfn.DefaultPair()
	dl, _ := NewDLeft([]hashfn.Func{pair.H1, pair.H2}, 64, 4, 13)
	for i := uint64(0); i < 300; i++ {
		if _, err := dl.Insert(key13(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	loads := dl.TableLoads()
	// Least-loaded with leftmost tie-break skews left but must use both.
	if loads[1] == 0 {
		t.Fatalf("d-left never used table 2: %v", loads)
	}
	if loads[0] < loads[1] {
		t.Fatalf("d-left skew inverted: %v (leftmost tie-break should favour table 1)", loads)
	}
}

// TestEarlyExitProbeAdvantage is the paper's core §III-A claim in probe
// terms: on a hit-heavy workload the early-exit table performs fewer
// memory accesses than the conventional simultaneous Hash-CAM.
func TestEarlyExitProbeAdvantage(t *testing.T) {
	cfg := hashcam.DefaultConfig()
	cfg.Buckets = 512
	conv, _ := NewConvHashCAM(cfg)
	prop, _ := NewProposed(cfg)
	for _, tbl := range []LookupTable{conv, prop} {
		for i := uint64(0); i < 1000; i++ {
			if _, err := tbl.Insert(key13(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	convBase, propBase := conv.Probes(), prop.Probes()
	for i := uint64(0); i < 1000; i++ {
		conv.Lookup(key13(i))
		prop.Lookup(key13(i))
	}
	convCost := conv.Probes() - convBase
	propCost := prop.Probes() - propBase
	if propCost >= convCost {
		t.Fatalf("early exit probes (%d) not below conventional (%d)", propCost, convCost)
	}
}

func TestConstructorValidation(t *testing.T) {
	pair := hashfn.DefaultPair()
	cases := []struct {
		name string
		err  error
	}{
		{"single-hash nil func", errOf(NewSingleHash(nil, 8, 2, 13))},
		{"single-hash zero buckets", errOf(NewSingleHash(pair.H1, 0, 2, 13))},
		{"d-left one func", errOf(NewDLeft([]hashfn.Func{pair.H1}, 8, 2, 13))},
		{"cuckoo zero kick", errOf(NewCuckoo(pair, 8, 2, 13, 0))},
		{"cuckoo nil pair", errOf(NewCuckoo(hashfn.Pair{}, 8, 2, 13, 8))},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: constructor accepted invalid arguments", tc.name)
		}
	}
}

func errOf[T any](_ T, err error) error { return err }

func ExampleLookupTable() {
	pair := hashfn.DefaultPair()
	tbl, err := NewCuckoo(pair, 1024, 2, 13, 64)
	if err != nil {
		fmt.Println(err)
		return
	}
	id, _ := tbl.Insert(key13(7))
	got, ok := tbl.Lookup(key13(7))
	fmt.Println(ok, got == id)
	// Output: true true
}
