package baseline

import (
	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file implements the slot-addressed lifecycle extension
// (table.EvictableBackend) on every §II baseline, so the expiry sweep
// works uniformly across structures: occupied slots are enumerated and
// reclaimed by the same location-derived IDs Lookup/Insert return, with
// no hashing and no key comparisons.

// Every baseline supports the eviction sweep alongside the hashed fast
// path.
var (
	_ table.EvictableBackend = (*SingleHash)(nil)
	_ table.EvictableBackend = (*DLeft)(nil)
	_ table.EvictableBackend = (*Cuckoo)(nil)
	_ table.EvictableBackend = (*ConvHashCAM)(nil)

	_ table.CandidateSlotter = (*SingleHash)(nil)
	_ table.CandidateSlotter = (*DLeft)(nil)
	_ table.CandidateSlotter = (*Cuckoo)(nil)
	_ table.CandidateSlotter = (*ConvHashCAM)(nil)

	_ table.RelocatingBackend = (*Cuckoo)(nil)
)

// appendOccupied appends the occupied slots of one K-slot bucket, with
// IDs formed as idBase + arena offset.
func appendOccupied(dst []uint64, st interface{ Occupied(int) bool }, base, slots int, idBase uint64) []uint64 {
	for s := 0; s < slots; s++ {
		if st.Occupied(base + s) {
			dst = append(dst, idBase+uint64(base+s))
		}
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of the key's single live-arena bucket (inserts place in live, so
// mid-migration the retiring arena's occupants cannot unblock a retry).
// Only meaningful on a pair-bound table (NewSingleHashPair); an
// arbitrary-Func table has no KeyHashes word to reduce and appends
// nothing, which the caller treats as "cannot evict".
func (s *SingleHash) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	var w uint64
	switch s.khWord {
	case khH1:
		w = kh.H1
	case khH2:
		w = kh.H2
	default:
		return dst
	}
	g := s.live.Load()
	return appendOccupied(dst, g.store, hashfn.Reduce(w, g.buckets)*s.slots, s.slots, 0)
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of every pair-bound sub-table's live candidate bucket (khNone
// sub-tables are skipped — no word to reduce without rehashing).
func (d *DLeft) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	g := d.live.Load()
	for t := range g.stores {
		var w uint64
		switch d.khWords[t] {
		case khH1:
			w = kh.H1
		case khH2:
			w = kh.H2
		default:
			continue
		}
		dst = appendOccupied(dst, g.stores[t],
			hashfn.Reduce(w, g.buckets)*d.slots, d.slots, d.liveID(g, t, 0))
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of the key's two direct buckets. Freeing one does not guarantee a
// kick-free retry (the freed slot may sit in the bucket the kick chain
// visits second), but it does guarantee a reachable hole one hop away,
// which bounds the common retry to a short chain.
func (c *Cuckoo) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	w := [2]uint64{kh.H1, kh.H2}
	for t := 0; t < 2; t++ {
		dst = appendOccupied(dst, c.stores[t],
			hashfn.Reduce(w[t], c.buckets)*c.slots, c.slots, c.id(t, 0))
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter, delegating to
// the inner Hash-CAM (same fid layout).
func (c *ConvHashCAM) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	return c.table.AppendCandidateSlots(dst, kh)
}

// shLoc resolves a slot ID to its owning arena and offset: the live
// arena's IDs come first, the retiring arena's (mid-migration only) in
// the region above (table.GrowLayout). ok is false beyond the bound.
func (s *SingleHash) shLoc(id uint64) (a *shArena, off int, ok bool) {
	g := s.live.Load()
	n := uint64(g.buckets * s.slots)
	if id < n {
		return g, int(id), true
	}
	og := s.old.Load()
	if og == nil || id-n >= uint64(og.buckets*s.slots) {
		return nil, 0, false
	}
	return og, int(id - n), true
}

// SlotIDBound implements table.EvictableBackend: buckets × slots of the
// live arena, extended by the retiring arena's span while a migration is
// in flight (table.GrowLayout's OldBound), then falling back at
// FinishGrow.
func (s *SingleHash) SlotIDBound() uint64 {
	n := uint64(s.live.Load().buckets * s.slots)
	if og := s.old.Load(); og != nil {
		n += uint64(og.buckets * s.slots)
	}
	return n
}

// SlotOccupied implements table.SlotSpace.
func (s *SingleHash) SlotOccupied(id uint64) bool {
	a, off, ok := s.shLoc(id)
	return ok && a.store.Occupied(off)
}

// WalkSlots implements table.Walker.
func (s *SingleHash) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(s, s.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (s *SingleHash) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	a, off, ok := s.shLoc(slot)
	if !ok {
		return dst, false
	}
	return a.store.AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend: the single slot write is
// charged one probe, matching Delete's accounting for the entry removal.
func (s *SingleHash) DeleteSlot(slot uint64) bool {
	a, off, ok := s.shLoc(slot)
	if !ok || !a.store.Occupied(off) {
		return false
	}
	a.store.Clear(off)
	a.count--
	s.probes.Add(1)
	return true
}

// dleftLoc resolves a slot ID to its owning generation, sub-table, and
// arena offset: the live generation's IDs come first, the retiring
// generation's (mid-migration only) in the region above
// (table.GrowLayout). ok is false beyond the bound.
func (d *DLeft) dleftLoc(slot uint64) (a *dlArena, t int, off int, ok bool) {
	g := d.live.Load()
	if base := d.oldBase(g); slot >= base {
		og := d.old.Load()
		if og == nil {
			return nil, 0, 0, false
		}
		per := uint64(og.slots(d.slots))
		rel := slot - base
		if rel >= uint64(len(d.hashes))*per {
			return nil, 0, 0, false
		}
		return og, int(rel / per), int(rel % per), true
	}
	per := uint64(g.slots(d.slots))
	return g, int(slot / per), int(slot % per), true
}

// SlotIDBound implements table.EvictableBackend: sub-tables × buckets ×
// slots of the live generation (the ID layout concatenates the sub-table
// arenas), extended by the retiring generation's span while a migration
// is in flight.
func (d *DLeft) SlotIDBound() uint64 {
	n := d.oldBase(d.live.Load())
	if og := d.old.Load(); og != nil {
		n += uint64(len(d.hashes) * og.slots(d.slots))
	}
	return n
}

// SlotOccupied implements table.SlotSpace.
func (d *DLeft) SlotOccupied(id uint64) bool {
	a, t, off, ok := d.dleftLoc(id)
	return ok && a.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (d *DLeft) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(d, d.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (d *DLeft) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	a, t, off, ok := d.dleftLoc(slot)
	if !ok {
		return dst, false
	}
	return a.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (d *DLeft) DeleteSlot(slot uint64) bool {
	a, t, off, ok := d.dleftLoc(slot)
	if !ok || !a.stores[t].Occupied(off) {
		return false
	}
	a.stores[t].Clear(off)
	a.counts[t]--
	d.probes.Add(1)
	return true
}

// SlotIDBound implements table.EvictableBackend: 2 × buckets × slots.
func (c *Cuckoo) SlotIDBound() uint64 { return uint64(2 * c.buckets * c.slots) }

// cuckooLoc splits a slot ID into its table and arena offset.
func (c *Cuckoo) cuckooLoc(slot uint64) (t int, off int) {
	perTable := uint64(c.buckets * c.slots)
	return int(slot / perTable), int(slot % perTable)
}

// SlotOccupied implements table.SlotSpace.
func (c *Cuckoo) SlotOccupied(id uint64) bool {
	t, off := c.cuckooLoc(id)
	return c.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (c *Cuckoo) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(c, c.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *Cuckoo) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= c.SlotIDBound() {
		return dst, false
	}
	t, off := c.cuckooLoc(slot)
	return c.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (c *Cuckoo) DeleteSlot(slot uint64) bool {
	if slot >= c.SlotIDBound() {
		return false
	}
	t, off := c.cuckooLoc(slot)
	if !c.stores[t].Occupied(off) {
		return false
	}
	c.stores[t].Clear(off)
	c.count--
	c.probes.Add(1)
	return true
}

// SetRelocateHook implements table.RelocatingBackend: each insert whose
// kick chain moved residents delivers the moves in chain order so the
// lifecycle layer's per-slot timestamps can follow relocated entries.
func (c *Cuckoo) SetRelocateHook(fn func(moves [][2]uint64)) { c.relocate = fn }

// SlotIDBound implements table.EvictableBackend, delegating to the inner
// Hash-CAM (same fid layout).
func (c *ConvHashCAM) SlotIDBound() uint64 { return c.table.SlotIDBound() }

// WalkSlots implements table.Walker.
func (c *ConvHashCAM) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return c.table.WalkSlots(cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *ConvHashCAM) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	return c.table.AppendSlotKey(dst, slot)
}

// DeleteSlot implements table.EvictableBackend; the slot write is charged
// on the conventional arrangement's own probe counter.
func (c *ConvHashCAM) DeleteSlot(slot uint64) bool {
	if !c.table.DeleteSlot(slot) {
		return false
	}
	c.probes.Add(1)
	return true
}
