package baseline

import "repro/internal/table"

// This file implements the slot-addressed lifecycle extension
// (table.EvictableBackend) on every §II baseline, so the expiry sweep
// works uniformly across structures: occupied slots are enumerated and
// reclaimed by the same location-derived IDs Lookup/Insert return, with
// no hashing and no key comparisons.

// Every baseline supports the eviction sweep alongside the hashed fast
// path.
var (
	_ table.EvictableBackend = (*SingleHash)(nil)
	_ table.EvictableBackend = (*DLeft)(nil)
	_ table.EvictableBackend = (*Cuckoo)(nil)
	_ table.EvictableBackend = (*ConvHashCAM)(nil)

	_ table.RelocatingBackend = (*Cuckoo)(nil)
)

// SlotIDBound implements table.EvictableBackend: buckets × slots.
func (s *SingleHash) SlotIDBound() uint64 { return uint64(s.buckets * s.slots) }

// SlotOccupied implements table.SlotSpace.
func (s *SingleHash) SlotOccupied(id uint64) bool { return s.store.Occupied(int(id)) }

// WalkSlots implements table.Walker.
func (s *SingleHash) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(s, s.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (s *SingleHash) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= s.SlotIDBound() {
		return dst, false
	}
	return s.store.AppendKey(dst, int(slot))
}

// DeleteSlot implements table.EvictableBackend: the single slot write is
// charged one probe, matching Delete's accounting for the entry removal.
func (s *SingleHash) DeleteSlot(slot uint64) bool {
	if slot >= s.SlotIDBound() || !s.store.Occupied(int(slot)) {
		return false
	}
	s.store.Clear(int(slot))
	s.count--
	s.probes.Add(1)
	return true
}

// SlotIDBound implements table.EvictableBackend: sub-tables × buckets ×
// slots (the ID layout concatenates the sub-table arenas).
func (d *DLeft) SlotIDBound() uint64 { return uint64(len(d.hashes) * d.buckets * d.slots) }

// dleftLoc splits a slot ID into its sub-table and arena offset.
func (d *DLeft) dleftLoc(slot uint64) (t int, off int) {
	perTable := uint64(d.buckets * d.slots)
	return int(slot / perTable), int(slot % perTable)
}

// SlotOccupied implements table.SlotSpace.
func (d *DLeft) SlotOccupied(id uint64) bool {
	t, off := d.dleftLoc(id)
	return d.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (d *DLeft) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(d, d.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (d *DLeft) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= d.SlotIDBound() {
		return dst, false
	}
	t, off := d.dleftLoc(slot)
	return d.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (d *DLeft) DeleteSlot(slot uint64) bool {
	if slot >= d.SlotIDBound() {
		return false
	}
	t, off := d.dleftLoc(slot)
	if !d.stores[t].Occupied(off) {
		return false
	}
	d.stores[t].Clear(off)
	d.counts[t]--
	d.probes.Add(1)
	return true
}

// SlotIDBound implements table.EvictableBackend: 2 × buckets × slots.
func (c *Cuckoo) SlotIDBound() uint64 { return uint64(2 * c.buckets * c.slots) }

// cuckooLoc splits a slot ID into its table and arena offset.
func (c *Cuckoo) cuckooLoc(slot uint64) (t int, off int) {
	perTable := uint64(c.buckets * c.slots)
	return int(slot / perTable), int(slot % perTable)
}

// SlotOccupied implements table.SlotSpace.
func (c *Cuckoo) SlotOccupied(id uint64) bool {
	t, off := c.cuckooLoc(id)
	return c.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (c *Cuckoo) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(c, c.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *Cuckoo) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= c.SlotIDBound() {
		return dst, false
	}
	t, off := c.cuckooLoc(slot)
	return c.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (c *Cuckoo) DeleteSlot(slot uint64) bool {
	if slot >= c.SlotIDBound() {
		return false
	}
	t, off := c.cuckooLoc(slot)
	if !c.stores[t].Occupied(off) {
		return false
	}
	c.stores[t].Clear(off)
	c.count--
	c.probes.Add(1)
	return true
}

// SetRelocateHook implements table.RelocatingBackend: each insert whose
// kick chain moved residents delivers the moves in chain order so the
// lifecycle layer's per-slot timestamps can follow relocated entries.
func (c *Cuckoo) SetRelocateHook(fn func(moves [][2]uint64)) { c.relocate = fn }

// SlotIDBound implements table.EvictableBackend, delegating to the inner
// Hash-CAM (same fid layout).
func (c *ConvHashCAM) SlotIDBound() uint64 { return c.table.SlotIDBound() }

// WalkSlots implements table.Walker.
func (c *ConvHashCAM) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return c.table.WalkSlots(cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *ConvHashCAM) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	return c.table.AppendSlotKey(dst, slot)
}

// DeleteSlot implements table.EvictableBackend; the slot write is charged
// on the conventional arrangement's own probe counter.
func (c *ConvHashCAM) DeleteSlot(slot uint64) bool {
	if !c.table.DeleteSlot(slot) {
		return false
	}
	c.probes.Add(1)
	return true
}
