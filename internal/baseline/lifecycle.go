package baseline

import (
	"repro/internal/hashfn"
	"repro/internal/table"
)

// This file implements the slot-addressed lifecycle extension
// (table.EvictableBackend) on every §II baseline, so the expiry sweep
// works uniformly across structures: occupied slots are enumerated and
// reclaimed by the same location-derived IDs Lookup/Insert return, with
// no hashing and no key comparisons.

// Every baseline supports the eviction sweep alongside the hashed fast
// path.
var (
	_ table.EvictableBackend = (*SingleHash)(nil)
	_ table.EvictableBackend = (*DLeft)(nil)
	_ table.EvictableBackend = (*Cuckoo)(nil)
	_ table.EvictableBackend = (*ConvHashCAM)(nil)

	_ table.CandidateSlotter = (*SingleHash)(nil)
	_ table.CandidateSlotter = (*DLeft)(nil)
	_ table.CandidateSlotter = (*Cuckoo)(nil)
	_ table.CandidateSlotter = (*ConvHashCAM)(nil)

	_ table.RelocatingBackend = (*Cuckoo)(nil)
)

// appendOccupied appends the occupied slots of one K-slot bucket, with
// IDs formed as idBase + arena offset.
func appendOccupied(dst []uint64, st interface{ Occupied(int) bool }, base, slots int, idBase uint64) []uint64 {
	for s := 0; s < slots; s++ {
		if st.Occupied(base + s) {
			dst = append(dst, idBase+uint64(base+s))
		}
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of the key's single bucket. Only meaningful on a pair-bound table
// (NewSingleHashPair); an arbitrary-Func table has no KeyHashes word to
// reduce and appends nothing, which the caller treats as "cannot evict".
func (s *SingleHash) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	var w uint64
	switch s.khWord {
	case khH1:
		w = kh.H1
	case khH2:
		w = kh.H2
	default:
		return dst
	}
	return appendOccupied(dst, s.store, hashfn.Reduce(w, s.buckets)*s.slots, s.slots, 0)
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of every pair-bound sub-table's candidate bucket (khNone
// sub-tables are skipped — no word to reduce without rehashing).
func (d *DLeft) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	for t := range d.stores {
		var w uint64
		switch d.khWords[t] {
		case khH1:
			w = kh.H1
		case khH2:
			w = kh.H2
		default:
			continue
		}
		dst = appendOccupied(dst, d.stores[t],
			hashfn.Reduce(w, d.buckets)*d.slots, d.slots, d.id(t, 0))
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter: the occupied
// slots of the key's two direct buckets. Freeing one does not guarantee a
// kick-free retry (the freed slot may sit in the bucket the kick chain
// visits second), but it does guarantee a reachable hole one hop away,
// which bounds the common retry to a short chain.
func (c *Cuckoo) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	w := [2]uint64{kh.H1, kh.H2}
	for t := 0; t < 2; t++ {
		dst = appendOccupied(dst, c.stores[t],
			hashfn.Reduce(w[t], c.buckets)*c.slots, c.slots, c.id(t, 0))
	}
	return dst
}

// AppendCandidateSlots implements table.CandidateSlotter, delegating to
// the inner Hash-CAM (same fid layout).
func (c *ConvHashCAM) AppendCandidateSlots(dst []uint64, kh hashfn.KeyHashes) []uint64 {
	return c.table.AppendCandidateSlots(dst, kh)
}

// SlotIDBound implements table.EvictableBackend: buckets × slots.
func (s *SingleHash) SlotIDBound() uint64 { return uint64(s.buckets * s.slots) }

// SlotOccupied implements table.SlotSpace.
func (s *SingleHash) SlotOccupied(id uint64) bool { return s.store.Occupied(int(id)) }

// WalkSlots implements table.Walker.
func (s *SingleHash) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(s, s.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (s *SingleHash) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= s.SlotIDBound() {
		return dst, false
	}
	return s.store.AppendKey(dst, int(slot))
}

// DeleteSlot implements table.EvictableBackend: the single slot write is
// charged one probe, matching Delete's accounting for the entry removal.
func (s *SingleHash) DeleteSlot(slot uint64) bool {
	if slot >= s.SlotIDBound() || !s.store.Occupied(int(slot)) {
		return false
	}
	s.store.Clear(int(slot))
	s.count--
	s.probes.Add(1)
	return true
}

// SlotIDBound implements table.EvictableBackend: sub-tables × buckets ×
// slots (the ID layout concatenates the sub-table arenas).
func (d *DLeft) SlotIDBound() uint64 { return uint64(len(d.hashes) * d.buckets * d.slots) }

// dleftLoc splits a slot ID into its sub-table and arena offset.
func (d *DLeft) dleftLoc(slot uint64) (t int, off int) {
	perTable := uint64(d.buckets * d.slots)
	return int(slot / perTable), int(slot % perTable)
}

// SlotOccupied implements table.SlotSpace.
func (d *DLeft) SlotOccupied(id uint64) bool {
	t, off := d.dleftLoc(id)
	return d.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (d *DLeft) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(d, d.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (d *DLeft) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= d.SlotIDBound() {
		return dst, false
	}
	t, off := d.dleftLoc(slot)
	return d.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (d *DLeft) DeleteSlot(slot uint64) bool {
	if slot >= d.SlotIDBound() {
		return false
	}
	t, off := d.dleftLoc(slot)
	if !d.stores[t].Occupied(off) {
		return false
	}
	d.stores[t].Clear(off)
	d.counts[t]--
	d.probes.Add(1)
	return true
}

// SlotIDBound implements table.EvictableBackend: 2 × buckets × slots.
func (c *Cuckoo) SlotIDBound() uint64 { return uint64(2 * c.buckets * c.slots) }

// cuckooLoc splits a slot ID into its table and arena offset.
func (c *Cuckoo) cuckooLoc(slot uint64) (t int, off int) {
	perTable := uint64(c.buckets * c.slots)
	return int(slot / perTable), int(slot % perTable)
}

// SlotOccupied implements table.SlotSpace.
func (c *Cuckoo) SlotOccupied(id uint64) bool {
	t, off := c.cuckooLoc(id)
	return c.stores[t].Occupied(off)
}

// WalkSlots implements table.Walker.
func (c *Cuckoo) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return table.WalkLinear(c, c.SlotIDBound(), cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *Cuckoo) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	if slot >= c.SlotIDBound() {
		return dst, false
	}
	t, off := c.cuckooLoc(slot)
	return c.stores[t].AppendKey(dst, off)
}

// DeleteSlot implements table.EvictableBackend.
func (c *Cuckoo) DeleteSlot(slot uint64) bool {
	if slot >= c.SlotIDBound() {
		return false
	}
	t, off := c.cuckooLoc(slot)
	if !c.stores[t].Occupied(off) {
		return false
	}
	c.stores[t].Clear(off)
	c.count--
	c.probes.Add(1)
	return true
}

// SetRelocateHook implements table.RelocatingBackend: each insert whose
// kick chain moved residents delivers the moves in chain order so the
// lifecycle layer's per-slot timestamps can follow relocated entries.
func (c *Cuckoo) SetRelocateHook(fn func(moves [][2]uint64)) { c.relocate = fn }

// SlotIDBound implements table.EvictableBackend, delegating to the inner
// Hash-CAM (same fid layout).
func (c *ConvHashCAM) SlotIDBound() uint64 { return c.table.SlotIDBound() }

// WalkSlots implements table.Walker.
func (c *ConvHashCAM) WalkSlots(cursor uint64, budget int, fn func(slot uint64) bool) (uint64, bool) {
	return c.table.WalkSlots(cursor, budget, fn)
}

// AppendSlotKey implements table.EvictableBackend.
func (c *ConvHashCAM) AppendSlotKey(dst []byte, slot uint64) ([]byte, bool) {
	return c.table.AppendSlotKey(dst, slot)
}

// DeleteSlot implements table.EvictableBackend; the slot write is charged
// on the conventional arrangement's own probe counter.
func (c *ConvHashCAM) DeleteSlot(slot uint64) bool {
	if !c.table.DeleteSlot(slot) {
		return false
	}
	c.probes.Add(1)
	return true
}
