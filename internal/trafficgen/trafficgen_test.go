package trafficgen

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestFlowBijection(t *testing.T) {
	seen := make(map[packet.FiveTuple]uint64)
	for i := uint64(0); i < 20000; i++ {
		ft := Flow(i)
		if !ft.Valid() {
			t.Fatalf("Flow(%d) invalid: %v", i, ft)
		}
		if prev, dup := seen[ft]; dup {
			t.Fatalf("Flow(%d) == Flow(%d): %v", i, prev, ft)
		}
		seen[ft] = i
	}
}

func TestFlowDeterministic(t *testing.T) {
	f := func(i uint64) bool { return Flow(i) == Flow(i) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeysDistinct(t *testing.T) {
	keys := Keys(5000)
	seen := make(map[string]bool, len(keys))
	for i, k := range keys {
		if len(k) != 13 {
			t.Fatalf("key %d has %d bytes, want 13", i, len(k))
		}
		if seen[string(k)] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[string(k)] = true
	}
}

func TestRandomHashesInRangeAndSpread(t *testing.T) {
	const buckets = 1024
	qs := RandomHashes(10000, buckets, 7)
	used := make(map[int]bool)
	for _, q := range qs {
		if q.Index1 < 0 || q.Index1 >= buckets || q.Index2 < 0 || q.Index2 >= buckets {
			t.Fatalf("index out of range: %+v", q)
		}
		used[q.Index1] = true
	}
	if len(used) < buckets/2 {
		t.Fatalf("random hashes covered only %d/%d buckets", len(used), buckets)
	}
}

func TestRandomHashesDeterministic(t *testing.T) {
	a := RandomHashes(100, 64, 9)
	b := RandomHashes(100, 64, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestBankIncrementWalksBanks(t *testing.T) {
	const (
		buckets = 1024
		banks   = 8
	)
	qs := BankIncrementHashes(64, buckets, banks, 3)
	for i, q := range qs {
		// Under the row:bank:col layout bank = bucket % banks.
		if got, want := q.Index1%banks, i%banks; got != want {
			t.Fatalf("query %d lands in bank %d, want %d", i, got, want)
		}
		if q.Index2%banks == q.Index1%banks {
			t.Fatalf("query %d: second choice in same bank as first", i)
		}
	}
}

func TestBankIncrementValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("banks not dividing buckets did not panic")
		}
	}()
	BankIncrementHashes(10, 1000, 7, 1)
}

func TestMatchRateSetComposition(t *testing.T) {
	for _, rate := range []float64{0, 0.25, 0.5, 0.75, 1} {
		resident, query := MatchRateSet(1000, 2000, rate, 11)
		if len(resident) != 1000 || len(query) != 2000 {
			t.Fatalf("sizes = (%d,%d)", len(resident), len(query))
		}
		set := make(map[string]bool, len(resident))
		for _, k := range resident {
			set[string(k)] = true
		}
		hits := 0
		for _, k := range query {
			if set[string(k)] {
				hits++
			}
		}
		got := float64(hits) / float64(len(query))
		if math.Abs(got-rate) > 0.001 {
			t.Fatalf("rate %v: measured hit fraction %v", rate, got)
		}
	}
}

func TestMatchRateSetShuffled(t *testing.T) {
	// Hits must be interleaved, not front-loaded: check the first and
	// second halves both contain hits and misses at rate 0.5.
	resident, query := MatchRateSet(500, 1000, 0.5, 13)
	set := make(map[string]bool)
	for _, k := range resident {
		set[string(k)] = true
	}
	firstHits := 0
	for _, k := range query[:500] {
		if set[string(k)] {
			firstHits++
		}
	}
	if firstHits < 150 || firstHits > 350 {
		t.Fatalf("first half has %d/500 hits; want randomly interleaved (~250)", firstHits)
	}
}

func TestMatchRateSetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad match rate did not panic")
		}
	}()
	MatchRateSet(10, 10, 1.5, 1)
}

func TestZipfConfigValidate(t *testing.T) {
	if err := DefaultZipfConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := []ZipfConfig{
		{Universe: 0, Skew: 1.2, HeadOffset: 1},
		{Universe: 100, Skew: 1.0, HeadOffset: 1},
		{Universe: 100, Skew: 1.2, HeadOffset: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestFig6AnchorPoints verifies the calibrated trace against the paper's
// published curve: B/A ≈ 57 % at 1 k packets and 33.81 % at 10 k
// (tolerance ±0.05), strictly decreasing beyond.
func TestFig6AnchorPoints(t *testing.T) {
	curve, err := NewFlowCurve(DefaultZipfConfig(), []int64{1000, 10000, 100000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve[0]-0.57) > 0.05 {
		t.Fatalf("B/A at 1k = %.3f, want 0.57±0.05", curve[0])
	}
	if math.Abs(curve[1]-0.3381) > 0.05 {
		t.Fatalf("B/A at 10k = %.3f, want 0.338±0.05", curve[1])
	}
	if !(curve[0] > curve[1] && curve[1] > curve[2]) {
		t.Fatalf("curve not decreasing: %v", curve)
	}
}

func TestZipfTraceCountsConsistent(t *testing.T) {
	z, err := NewZipfTrace(DefaultZipfConfig())
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]struct{})
	for i := 0; i < 5000; i++ {
		model[z.NextIndex()] = struct{}{}
	}
	if z.Emitted() != 5000 {
		t.Fatalf("Emitted = %d, want 5000", z.Emitted())
	}
	if z.Distinct() != len(model) {
		t.Fatalf("Distinct = %d, model says %d", z.Distinct(), len(model))
	}
	if got := z.NewFlowRatio(); math.Abs(got-float64(len(model))/5000) > 1e-12 {
		t.Fatalf("NewFlowRatio = %v inconsistent", got)
	}
}

func TestZipfDeterministicAcrossRuns(t *testing.T) {
	cfg := DefaultZipfConfig()
	a, err := NewZipfTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewZipfTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a.NextIndex() != b.NextIndex() {
			t.Fatalf("same-seed traces diverged at packet %d", i)
		}
	}
}

func TestZipfHeavyTail(t *testing.T) {
	// The most popular flow must dominate a uniform draw but not the
	// whole trace: its share should land between 1% and 20% under the
	// calibrated head offset.
	z, _ := NewZipfTrace(DefaultZipfConfig())
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.NextIndex()]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	share := float64(max) / n
	if share < 0.01 || share > 0.20 {
		t.Fatalf("top flow share = %.4f, want heavy but not degenerate", share)
	}
}

func TestNewFlowCurveValidation(t *testing.T) {
	if _, err := NewFlowCurve(DefaultZipfConfig(), []int64{100, 50}); err == nil {
		t.Fatal("descending sizes accepted")
	}
}

func TestZipfKeysUsableByTable(t *testing.T) {
	// End-to-end smoke: trace tuples serialise to 13-byte keys.
	z, _ := NewZipfTrace(DefaultZipfConfig())
	spec := packet.FiveTupleSpec()
	k1 := spec.Key(z.Next())
	if len(k1) != 13 {
		t.Fatalf("key length %d", len(k1))
	}
	k2 := spec.Key(z.Next())
	if bytes.Equal(k1, k2) {
		// Possible (same flow twice) but at the calibrated head weight the
		// first two packets are almost surely distinct; treat as failure
		// to catch a frozen sampler.
		t.Fatal("first two packets identical; sampler may be stuck")
	}
}
