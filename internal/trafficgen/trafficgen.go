// Package trafficgen generates the workloads of the paper's evaluation:
//
//   - hash patterns for the sequencer-level load-balance tests of
//     Table II(A) (random hash values, and "unique hash with bank
//     addresses incremented by 1");
//   - flow-descriptor sets with controlled match rates for Table II(B)
//     ("another 10K input set with randomly distributed matched data at
//     predefined match rates");
//   - a heavy-tailed (Zipf) synthetic traffic trace calibrated to the
//     new-flow-ratio curve of Fig. 6, substituting for the paper's 2012
//     European switch-fabric capture (594 M packets) which is not
//     available.
//
// All generators are deterministic under a seed.
package trafficgen

import (
	"fmt"
	"net/netip"

	"repro/internal/hashfn"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Flow materialises flow index i of a generation universe as a distinct
// 5-tuple. The mapping is a fixed bijection so the same index always
// yields the same flow across generators and runs.
func Flow(i uint64) packet.FiveTuple {
	// Spread the index bits so neighbouring flows differ in several
	// header fields, as real traffic does.
	z := hashfn.Finalize64(i)
	src := [4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}
	dst := [4]byte{byte(192 + (z>>56)&3), byte(z >> 48), byte(z >> 40), byte(z >> 32)}
	proto := uint8(packet.ProtoTCP)
	if z&1 == 1 {
		proto = packet.ProtoUDP
	}
	return packet.FiveTuple{
		Src:     netip.AddrFrom4(src),
		Dst:     netip.AddrFrom4(dst),
		SrcPort: uint16(z>>16) | 1024, // ephemeral-looking
		DstPort: uint16(z) % 1024,     // service-looking
		Proto:   proto,
	}
}

// Keys returns the serialised 5-tuple keys of flows [0, n).
func Keys(n int) [][]byte {
	spec := packet.FiveTupleSpec()
	out := make([][]byte, n)
	for i := range out {
		out[i] = spec.Key(Flow(uint64(i)))
	}
	return out
}

// HashQuery is one pre-hashed lookup request for the sequencer-level
// tests, carrying the two table indices directly (Table II(A) drives the
// circuit with "hash patterns", bypassing descriptor hashing).
type HashQuery struct {
	Index1, Index2 int
}

// RandomHashes returns n uniformly random two-choice index pairs over
// buckets, from seed — Table II(A)'s "random hash" input.
func RandomHashes(n, buckets int, seed uint64) []HashQuery {
	if buckets <= 0 {
		panic(fmt.Sprintf("trafficgen: buckets must be positive, got %d", buckets))
	}
	rng := sim.NewRand(seed)
	out := make([]HashQuery, n)
	for i := range out {
		out[i] = HashQuery{Index1: rng.Intn(buckets), Index2: rng.Intn(buckets)}
	}
	return out
}

// BankIncrementHashes returns n index pairs that walk the DDR banks in
// strict rotation — Table II(A)'s "unique hash with bank increment"
// pattern, the friendliest case for the bank selector. bucketsPerBank is
// the stride between same-bank buckets under the row:bank:column layout.
func BankIncrementHashes(n, buckets, banks int, seed uint64) []HashQuery {
	if buckets <= 0 || banks <= 0 || buckets%banks != 0 {
		panic(fmt.Sprintf("trafficgen: need banks (%d) dividing buckets (%d)", banks, buckets))
	}
	rng := sim.NewRand(seed)
	bucketsPerBank := buckets / banks
	out := make([]HashQuery, n)
	for i := range out {
		bank := i % banks
		// Unique location within the bank, pseudo-random row/column.
		off1 := rng.Intn(bucketsPerBank)
		off2 := rng.Intn(bucketsPerBank)
		out[i] = HashQuery{
			Index1: off1*banks + bank,
			Index2: off2*banks + (bank+banks/2)%banks,
		}
	}
	return out
}

// MatchRateSet builds the Table II(B) workload: queries keys of which a
// fraction matchRate hit a resident population of residentCount flows and
// the remainder miss (drawn from a disjoint flow range), randomly
// interleaved. It returns the resident keys (to pre-populate the table)
// and the query keys in transmission order.
func MatchRateSet(residentCount, queries int, matchRate float64, seed uint64) (resident, query [][]byte) {
	if matchRate < 0 || matchRate > 1 {
		panic(fmt.Sprintf("trafficgen: match rate %v out of [0,1]", matchRate))
	}
	if residentCount <= 0 || queries <= 0 {
		panic("trafficgen: resident and query counts must be positive")
	}
	spec := packet.FiveTupleSpec()
	resident = make([][]byte, residentCount)
	for i := range resident {
		resident[i] = spec.Key(Flow(uint64(i)))
	}
	rng := sim.NewRand(seed)
	hits := int(float64(queries)*matchRate + 0.5)
	query = make([][]byte, 0, queries)
	for i := 0; i < hits; i++ {
		query = append(query, resident[rng.Intn(residentCount)])
	}
	missBase := uint64(residentCount) + 1<<32 // disjoint index range
	for i := hits; i < queries; i++ {
		query = append(query, spec.Key(Flow(missBase+uint64(i))))
	}
	rng.Shuffle(len(query), func(i, j int) { query[i], query[j] = query[j], query[i] })
	return resident, query
}
