package trafficgen

import (
	"fmt"
	"math/bits"
	"net/netip"

	"repro/internal/hashfn"
	"repro/internal/packet"
	"repro/internal/sim"
)

// This file generates the adversarial workloads of the robustness
// evaluation: an offline GF(2) collision miner that defeats the unkeyed
// CRC hash pair (and demonstrably fails against the keyed Mix64 pair), a
// SYN-flood one-packet-flow churn source, a flash-crowd ramp, and the
// IPv6/mixed-family generators. Like everything else in this package,
// every generator is deterministic under its inputs, so attack traces are
// reproducible across runs and committable as benchmark baselines.

// Disjoint flow-index ranges so adversarial universes never alias the
// benign Flow/MatchRateSet/Zipf universes (which live near zero and at
// 1<<32).
const (
	synFloodBase   = uint64(1) << 40
	flashCrowdBase = uint64(1) << 41
	mixedBase      = uint64(1) << 42
)

// Flow6 materialises flow index i as a distinct IPv6 5-tuple, the
// dual-stack sibling of Flow. The mapping is a fixed bijection: the index
// is embedded verbatim in the source address, and a finalized spread of it
// drives the remaining header fields.
func Flow6(i uint64) packet.FiveTuple {
	z := hashfn.Finalize64(i)
	var src, dst [16]byte
	// 2001:db8::/32 — the IPv6 documentation prefix.
	src[0], src[1], src[2], src[3] = 0x20, 0x01, 0x0d, 0xb8
	dst[0], dst[1], dst[2], dst[3] = 0x20, 0x01, 0x0d, 0xb8
	for b := 0; b < 8; b++ {
		src[8+b] = byte(i >> (56 - 8*b))
		dst[8+b] = byte(z >> (56 - 8*b))
	}
	dst[4] = 0xff // distinct /40 so src and dst never collide
	proto := uint8(packet.ProtoTCP)
	if z&2 == 2 {
		proto = packet.ProtoUDP
	}
	return packet.FiveTuple{
		Src:     netip.AddrFrom16(src),
		Dst:     netip.AddrFrom16(dst),
		SrcPort: uint16(z>>16) | 1024,
		DstPort: uint16(z) % 1024,
		Proto:   proto,
	}
}

// SYNFlood returns packet i of a SYN flood against one victim service:
// every packet is a TCP "connection attempt" from a fresh spoofed source,
// so each opens a brand-new one-packet flow and none is ever looked up
// again — the pure state-exhaustion churn case for a flow table. Tuples
// are distinct for i < 1<<31.
func SYNFlood(i uint64) packet.FiveTuple {
	z := hashfn.Finalize64(synFloodBase + i)
	return packet.FiveTuple{
		// Spoofed source: the index is embedded injectively (31 bits),
		// the port drawn from the spread for an ephemeral look.
		Src:     netip.AddrFrom4([4]byte{byte(1 + (i>>24)&0x7f), byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{203, 0, 113, 10}), // the one victim
		SrcPort: uint16(z) | 1024,
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}

// FlashCrowd generates a flash-crowd trace: packets drawn uniformly from
// an active flow population that ramps linearly from 1 to peak flows over
// the first ramp packets, then holds at peak — the benign-but-abrupt
// overload case (every flow is legitimate and repeatedly revisited, but
// the arrival rate of *new* flows spikes far above steady state).
type FlashCrowd struct {
	peak int
	ramp int64
	t    int64
	rng  *sim.Rand
}

// NewFlashCrowd returns a flash-crowd source ramping to peak flows over
// ramp packets, deterministic under seed.
func NewFlashCrowd(peak int, ramp int64, seed uint64) *FlashCrowd {
	if peak <= 0 || ramp <= 0 {
		panic(fmt.Sprintf("trafficgen: flash crowd needs positive peak (%d) and ramp (%d)", peak, ramp))
	}
	return &FlashCrowd{peak: peak, ramp: ramp, rng: sim.NewRand(seed)}
}

// Next returns the next packet's 5-tuple.
func (f *FlashCrowd) Next() packet.FiveTuple {
	k := f.peak
	if f.t < f.ramp {
		k = 1 + int(int64(f.peak-1)*f.t/f.ramp)
	}
	f.t++
	return Flow(flashCrowdBase + uint64(f.rng.Intn(k)))
}

// MixedFamilyFlows returns n distinct flows of which a fraction v6Ratio
// (in expectation, deterministic under seed) are IPv6, the rest IPv4 —
// the dual-stack ingress mix. Families draw from disjoint index ranges.
func MixedFamilyFlows(n int, v6Ratio float64, seed uint64) []packet.FiveTuple {
	if v6Ratio < 0 || v6Ratio > 1 {
		panic(fmt.Sprintf("trafficgen: v6 ratio %v out of [0,1]", v6Ratio))
	}
	rng := sim.NewRand(seed)
	out := make([]packet.FiveTuple, n)
	for i := range out {
		if rng.Float64() < v6Ratio {
			out[i] = Flow6(mixedBase + uint64(i))
		} else {
			out[i] = Flow(mixedBase + uint64(i))
		}
	}
	return out
}

// attackBase is the anchor tuple the collision miner perturbs. Fixed so
// mined traces are identical across runs.
func attackBase() packet.FiveTuple {
	return packet.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{10, 11, 12, 13}),
		Dst:     netip.AddrFrom4([4]byte{192, 168, 200, 100}),
		SrcPort: 40000,
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
}

// minerBits is the number of header bits the miner is free to flip: the
// low 3 source-address bytes, the low 2 destination-address bytes and the
// 16 source-port bits — fields a spoofing sender controls without
// changing the victim service or leaving its address block.
const minerBits = 56

// applyMask returns attackBase with the mask's set bits flipped into the
// controllable header fields. Distinct masks give distinct tuples.
func applyMask(mask uint64) packet.FiveTuple {
	ft := attackBase()
	s, d := ft.Src.As4(), ft.Dst.As4()
	s[1] ^= byte(mask)
	s[2] ^= byte(mask >> 8)
	s[3] ^= byte(mask >> 16)
	d[2] ^= byte(mask >> 24)
	d[3] ^= byte(mask >> 32)
	ft.Src, ft.Dst = netip.AddrFrom4(s), netip.AddrFrom4(d)
	ft.SrcPort ^= uint16(mask >> 40)
	return ft
}

// MineCollidingFlows mines n distinct 5-tuples that all collide with each
// other on BOTH bucket indices of pair, for any power-of-two bucket count
// up to buckets — the worst-case input for a two-choice table, defeating
// the second choice entirely.
//
// The miner treats the pair as GF(2)-affine (true of the CRC default:
// H(x ^ y) == H(x) ^ H(y) ^ H(0)), measures the bucket-bit delta of each
// controllable header bit with 56 probe evaluations, and Gauss-eliminates
// the deltas to a null-space basis; every combination of basis masks then
// leaves both bucket indices unchanged. No seed or table access is needed
// — this is the offline attack a public hash family permits.
//
// Every mined tuple is verified against pair. ok reports whether all n
// actually collide: true for DefaultPair (and any affine pair), false for
// the keyed SeededPair family, whose non-linear finalizer breaks the
// superposition the miner depends on — the property keyed hashing buys.
// The flows are returned either way (a keyed table sees them as ordinary
// spread-out traffic, which is exactly the comparison the attack
// benchmarks run).
func MineCollidingFlows(pair hashfn.Pair, buckets, n int) (flows []packet.FiveTuple, ok bool) {
	if buckets < 2 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("trafficgen: miner needs a power-of-two bucket count >= 2, got %d", buckets))
	}
	b := bits.Len64(uint64(buckets)) - 1 // index bits per hash
	if 2*b > 60 {
		panic(fmt.Sprintf("trafficgen: bucket count %d too large for the miner's signature word", buckets))
	}
	spec := packet.FiveTupleSpec()
	// sig packs both bucket indices of a candidate into one GF(2) vector.
	sig := func(mask uint64) uint64 {
		key := spec.Key(applyMask(mask))
		return uint64(pair.Index1(key, buckets)) | uint64(pair.Index2(key, buckets))<<b
	}
	base := sig(0)

	// Per-bit deltas, then Gaussian elimination tracking which header bits
	// combine into each reduced row. Rows that cancel to zero are
	// null-space masks: flipping that bit set provably (for an affine
	// pair) preserves both indices.
	var pivots [64]struct{ vec, mask uint64 }
	var null []uint64
	for i := 0; i < minerBits; i++ {
		v, m := sig(1<<i)^base, uint64(1)<<i
		for v != 0 {
			p := bits.Len64(v) - 1
			if pivots[p].vec == 0 {
				pivots[p].vec, pivots[p].mask = v, m
				break
			}
			v ^= pivots[p].vec
			m ^= pivots[p].mask
		}
		if v == 0 {
			null = append(null, m)
		}
	}
	if len(null) >= 64 || n > 1<<len(null) {
		panic(fmt.Sprintf("trafficgen: null space of %d masks cannot yield %d distinct flows", len(null), n))
	}

	// Enumerate combinations of the null basis. Counter c selects which
	// basis masks to XOR; distinct c give distinct header masks, hence
	// distinct tuples. c = 0 is the base tuple itself.
	flows = make([]packet.FiveTuple, n)
	ok = true
	for c := 0; c < n; c++ {
		mask := uint64(0)
		for k, bm := range null {
			if c&(1<<k) != 0 {
				mask ^= bm
			}
		}
		flows[c] = applyMask(mask)
		if sig(mask) != base {
			ok = false
		}
	}
	return flows, ok
}
