package trafficgen

import (
	"fmt"
	"math/rand"

	"repro/internal/packet"
	"repro/internal/sim"
)

// ZipfConfig parameterises the heavy-tailed synthetic trace that stands in
// for the paper's 2012 switch-fabric capture (Fig. 6).
type ZipfConfig struct {
	// Universe is the number of distinct flows the trace can draw from.
	Universe uint64
	// Skew is the Zipf exponent s: P(rank r) ∝ 1/(HeadOffset+r)^s. Must
	// be > 1 (the rejection-inversion sampler's domain).
	Skew float64
	// HeadOffset is the shift v of the shifted-Zipf law. Larger values
	// flatten the head (no single mega-flow dominating), which real
	// switch-fabric traffic exhibits and the Fig. 6 calibration needs.
	HeadOffset float64
	// Seed drives the deterministic sampler.
	Seed uint64
}

// DefaultZipfConfig returns the calibration that reproduces the paper's
// Fig. 6 anchor points — a new-flow ratio (distinct flows / packets) of
// ~57 % over the first 1 k packets and ~34 % over the first 10 k, falling
// below 10 % for large packet sets. Measured at this calibration:
// 0.594 at 1 k, 0.340 at 10 k, 0.112 at 594 k, dropping under 0.10 near
// 1 M packets. The calibration procedure is recorded in EXPERIMENTS.md.
func DefaultZipfConfig() ZipfConfig {
	return ZipfConfig{Universe: 60_000_000, Skew: 1.36, HeadOffset: 30, Seed: 2012}
}

// Validate reports an error for unusable parameters.
func (c ZipfConfig) Validate() error {
	switch {
	case c.Universe == 0:
		return fmt.Errorf("trafficgen: zipf universe must be positive")
	case c.Skew <= 1:
		return fmt.Errorf("trafficgen: zipf skew must be > 1, got %v", c.Skew)
	case c.HeadOffset < 1:
		return fmt.Errorf("trafficgen: zipf head offset must be >= 1, got %v", c.HeadOffset)
	}
	return nil
}

// simSource adapts sim.Rand to math/rand's Source64 so the standard
// library's rejection-inversion Zipf sampler runs on our deterministic
// stream.
type simSource struct{ r *sim.Rand }

func (s simSource) Int63() int64    { return int64(s.r.Uint64() >> 1) }
func (s simSource) Uint64() uint64  { return s.r.Uint64() }
func (s simSource) Seed(seed int64) { panic("trafficgen: reseeding not supported") }

// ZipfTrace draws flow ranks from a Zipf popularity distribution. Rank r
// maps to flow index Flow(r) — the rank-to-tuple mapping is already a
// mixing bijection, so no separate permutation is needed.
type ZipfTrace struct {
	cfg  ZipfConfig
	zipf *rand.Zipf

	emitted  int64
	distinct int
	seen     map[uint64]struct{}
}

// NewZipfTrace builds the sampler. Construction is O(1) in Universe.
func NewZipfTrace(cfg ZipfConfig) (*ZipfTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rand.New(simSource{r: sim.NewRand(cfg.Seed)})
	z := rand.NewZipf(src, cfg.Skew, cfg.HeadOffset, cfg.Universe-1)
	if z == nil {
		return nil, fmt.Errorf("trafficgen: zipf sampler rejected parameters s=%v imax=%d", cfg.Skew, cfg.Universe-1)
	}
	return &ZipfTrace{cfg: cfg, zipf: z, seen: make(map[uint64]struct{})}, nil
}

// NextIndex returns the next packet's flow index.
func (z *ZipfTrace) NextIndex() uint64 {
	flow := z.zipf.Uint64()
	z.emitted++
	if _, ok := z.seen[flow]; !ok {
		z.seen[flow] = struct{}{}
		z.distinct++
	}
	return flow
}

// SampleIndex draws the next packet's flow index without the
// distinct-flow accounting of NextIndex: the seen-set grows with the
// distinct draws, which long-running load generators (the expiry churn
// bench) cannot afford. Emitted still advances; Distinct and NewFlowRatio
// only reflect NextIndex draws.
func (z *ZipfTrace) SampleIndex() uint64 {
	z.emitted++
	return z.zipf.Uint64()
}

// Next returns the next packet's 5-tuple.
func (z *ZipfTrace) Next() packet.FiveTuple { return Flow(z.NextIndex()) }

// Emitted returns the number of packets drawn so far (A of Fig. 6).
func (z *ZipfTrace) Emitted() int64 { return z.emitted }

// Distinct returns the number of distinct flows drawn so far (B of
// Fig. 6).
func (z *ZipfTrace) Distinct() int { return z.distinct }

// NewFlowRatio returns B/A, the paper's Fig. 6 metric.
func (z *ZipfTrace) NewFlowRatio() float64 {
	if z.emitted == 0 {
		return 0
	}
	return float64(z.distinct) / float64(z.emitted)
}

// NewFlowCurve runs a fresh sampler over the given packet-set sizes and
// returns the B/A ratio at each size — the series Fig. 6 plots. Sizes must
// be ascending.
func NewFlowCurve(cfg ZipfConfig, sizes []int64) ([]float64, error) {
	z, err := NewZipfTrace(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sizes))
	var prev int64
	for i, size := range sizes {
		if size <= prev {
			return nil, fmt.Errorf("trafficgen: NewFlowCurve sizes must be ascending (%d after %d)", size, prev)
		}
		for z.Emitted() < size {
			z.NextIndex()
		}
		out[i] = z.NewFlowRatio()
		prev = size
	}
	return out, nil
}
