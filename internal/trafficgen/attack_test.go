package trafficgen

import (
	"testing"

	"repro/internal/hashfn"
	"repro/internal/packet"
)

// TestMineCollidingFlowsDefeatsCRC pins the attack the unkeyed default
// invites: the GF(2) miner produces flows that all collide on both bucket
// indices of the CRC pair — and, by mask subsumption, at every smaller
// power-of-two bucket count too.
func TestMineCollidingFlowsDefeatsCRC(t *testing.T) {
	pair := hashfn.DefaultPair()
	const buckets, n = 4096, 512
	flows, ok := MineCollidingFlows(pair, buckets, n)
	if !ok {
		t.Fatal("miner reported failure against the affine CRC pair")
	}
	spec := packet.FiveTupleSpec()
	baseKey := spec.Key(flows[0])
	seen := make(map[packet.FiveTuple]bool, n)
	for i, ft := range flows {
		if !ft.Valid() || !ft.IsIPv4() {
			t.Fatalf("mined flow %d invalid: %v", i, ft)
		}
		if seen[ft] {
			t.Fatalf("mined flow %d duplicates an earlier tuple", i)
		}
		seen[ft] = true
		key := spec.Key(ft)
		for _, bk := range []int{buckets, 256, 8} {
			if pair.Index1(key, bk) != pair.Index1(baseKey, bk) ||
				pair.Index2(key, bk) != pair.Index2(baseKey, bk) {
				t.Fatalf("mined flow %d does not collide at %d buckets", i, bk)
			}
		}
	}
	// Determinism: the trace is a pure function of (pair, buckets, n).
	again, _ := MineCollidingFlows(pair, buckets, n)
	for i := range flows {
		if again[i] != flows[i] {
			t.Fatalf("mined trace not deterministic at flow %d", i)
		}
	}
}

// TestMineCollidingFlowsFailsAgainstKeyedPair pins the defence: the same
// miner run against the keyed Mix64 pair reports failure, and its output
// spreads over the table instead of concentrating — collision mining
// needs the affinity the keyed family removes.
func TestMineCollidingFlowsFailsAgainstKeyedPair(t *testing.T) {
	pair := hashfn.SeededPair(0xfeedface)
	const buckets, n = 4096, 512
	flows, ok := MineCollidingFlows(pair, buckets, n)
	if ok {
		t.Fatal("miner claimed success against the keyed pair")
	}
	spec := packet.FiveTupleSpec()
	dist := make(map[int]bool)
	for _, ft := range flows {
		dist[pair.Index1(spec.Key(ft), buckets)] = true
	}
	// 512 flows over 4096 buckets: a spread placement occupies hundreds of
	// distinct buckets; a successful attack would occupy one.
	if len(dist) < n/4 {
		t.Fatalf("mined flows occupy only %d distinct buckets under the keyed pair", len(dist))
	}
}

// TestSYNFlood pins the churn source: all-TCP, one victim, distinct
// spoofed sources, deterministic.
func TestSYNFlood(t *testing.T) {
	const n = 1 << 14
	seen := make(map[packet.FiveTuple]bool, n)
	victim := SYNFlood(0).Dst
	for i := uint64(0); i < n; i++ {
		ft := SYNFlood(i)
		if !ft.Valid() || !ft.IsIPv4() || ft.Proto != packet.ProtoTCP {
			t.Fatalf("packet %d: not a valid TCP tuple: %v", i, ft)
		}
		if ft.Dst != victim || ft.DstPort != 443 {
			t.Fatalf("packet %d: strayed from the victim service: %v", i, ft)
		}
		if seen[ft] {
			t.Fatalf("packet %d: reused a source tuple", i)
		}
		seen[ft] = true
		if ft != SYNFlood(i) {
			t.Fatalf("packet %d: not deterministic", i)
		}
	}
}

// TestFlashCrowd pins the ramp: the active population grows to peak and
// no further, early packets draw from a small set, and the trace is
// deterministic under its seed.
func TestFlashCrowd(t *testing.T) {
	const peak, ramp, n = 100, 1000, 5000
	a, b := NewFlashCrowd(peak, ramp, 7), NewFlashCrowd(peak, ramp, 7)
	flows := make(map[packet.FiveTuple]bool)
	earlyFlows := make(map[packet.FiveTuple]bool)
	for i := 0; i < n; i++ {
		ft := a.Next()
		if bt := b.Next(); bt != ft {
			t.Fatalf("packet %d: traces diverge under equal seeds", i)
		}
		if !ft.Valid() || !ft.IsIPv4() {
			t.Fatalf("packet %d: invalid tuple %v", i, ft)
		}
		flows[ft] = true
		if i < ramp/10 {
			earlyFlows[ft] = true
		}
	}
	if len(flows) > peak {
		t.Fatalf("%d distinct flows, want <= peak %d", len(flows), peak)
	}
	// During the first tenth of the ramp at most ~peak/10 flows exist.
	if len(earlyFlows) > peak/5 {
		t.Fatalf("%d distinct flows in the early ramp, want a small head", len(earlyFlows))
	}
	if c := NewFlashCrowd(peak, ramp, 8).Next(); c != Flow(flashCrowdBase) {
		t.Fatalf("first ramp packet is %v, want the population-of-one flow", c)
	}
}

// TestFlow6AndMixedFamily pins the dual-stack generators: Flow6 is a
// stable bijection onto valid IPv6 tuples, and MixedFamilyFlows hits the
// requested family ratio on distinct flows.
func TestFlow6AndMixedFamily(t *testing.T) {
	seen := make(map[packet.FiveTuple]bool)
	for i := uint64(0); i < 1<<12; i++ {
		ft := Flow6(i)
		if !ft.Valid() || ft.IsIPv4() {
			t.Fatalf("Flow6(%d) = %v, want a valid IPv6 tuple", i, ft)
		}
		if seen[ft] {
			t.Fatalf("Flow6(%d) duplicates an earlier index", i)
		}
		seen[ft] = true
		if ft != Flow6(i) {
			t.Fatalf("Flow6(%d) not stable", i)
		}
	}

	mixed := MixedFamilyFlows(4000, 0.75, 11)
	got6 := 0
	dup := make(map[packet.FiveTuple]bool, len(mixed))
	for i, ft := range mixed {
		if !ft.Valid() {
			t.Fatalf("mixed flow %d invalid: %v", i, ft)
		}
		if dup[ft] {
			t.Fatalf("mixed flow %d duplicated", i)
		}
		dup[ft] = true
		if !ft.IsIPv4() {
			got6++
		}
	}
	if ratio := float64(got6) / float64(len(mixed)); ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("v6 ratio %.3f, want ~0.75", ratio)
	}
	for i := range mixed {
		if MixedFamilyFlows(4000, 0.75, 11)[i] != mixed[i] {
			t.Fatalf("mixed trace not deterministic at %d", i)
		}
		break
	}
}
