// Package repro's root benchmark suite regenerates every table and figure
// of the paper (see DESIGN.md §4 for the index). The benchmarks report
// the *simulated* metric of each experiment via b.ReportMetric — the
// reproduction target — alongside Go wall-clock numbers:
//
//   - BenchmarkFig3BusUtilization: percent DQ utilisation per burst-group
//     size (util_pct metric per sub-bench).
//   - BenchmarkTable2A*/BenchmarkTable2B*: simulated Mdesc/s.
//   - BenchmarkFig6NewFlowRatio: B/A percent at each packet-set size.
//   - BenchmarkAblation*: the design-choice sweeps of DESIGN.md §4.
//   - BenchmarkBaseline*: probe counts of the §II lookup structures.
//
// Run `go test -bench=. -benchmem` or `cmd/flowbench all` for the full
// paper-style tables.
package repro_test

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/flowproc"
	"repro/internal/baseline"
	"repro/internal/bloom"
	"repro/internal/experiments"
	"repro/internal/hashcam"
	"repro/internal/hashfn"
	"repro/internal/table"
	"repro/internal/trafficgen"
)

// benchScale keeps the timed-model benches tractable under `go test
// -bench=.` while preserving every shape; cmd/flowbench runs full scale.
func benchScale() experiments.Scale {
	return experiments.Scale{Descriptors: 3000, InjectPeriod: 8}
}

func BenchmarkFig3BusUtilization(b *testing.B) {
	for _, bursts := range []int{1, 2, 5, 10, 20, 35} {
		b.Run(fmt.Sprintf("bursts=%d", bursts), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				points, err := experiments.Fig3(bursts)
				if err != nil {
					b.Fatal(err)
				}
				util = points[len(points)-1].Utilisation
			}
			b.ReportMetric(100*util, "util_pct")
		})
	}
}

func BenchmarkTable1ResourceModel(b *testing.B) {
	var bits int64
	for i := 0; i < b.N; i++ {
		bits = experiments.Table1().TotalOnChipBits
	}
	b.ReportMetric(float64(bits), "onchip_bits")
}

func BenchmarkTable2AHashPatterns(b *testing.B) {
	var rows []experiments.Table2ARow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2A(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Rate, "Mdesc_s_"+sanitize(r.Description))
	}
}

func BenchmarkTable2BMissRates(b *testing.B) {
	for _, miss := range []int{100, 50, 0} {
		b.Run(fmt.Sprintf("miss=%d%%", miss), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table2B(benchScale())
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if int(r.MissRate*100) == miss {
						rate = r.Rate
					}
				}
			}
			b.ReportMetric(rate, "Mdesc_s")
		})
	}
}

func BenchmarkFig6NewFlowRatio(b *testing.B) {
	sizes := []int64{1000, 10000, 100000}
	var points []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Fig6(sizes)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(100*p.Ratio, fmt.Sprintf("BA_pct_at_%d", p.Packets))
	}
}

func BenchmarkAblationEarlyExit(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationEarlyExit(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "Mdesc_s_early_exit")
	b.ReportMetric(rows[1].Rate, "Mdesc_s_simultaneous")
}

func BenchmarkAblationBankSelector(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBankSelector(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Rate, "Mdesc_s_banksel_on")
	b.ReportMetric(rows[1].Rate, "Mdesc_s_banksel_off")
}

func BenchmarkAblationBurstWrite(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBurstWrite(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Rate, "Mdesc_s_"+sanitize(r.Name))
	}
}

// BenchmarkBaselineLookup compares the pure-algorithm lookup structures of
// §II at equal occupancy: wall-clock per lookup plus probes per lookup.
func BenchmarkBaselineLookup(b *testing.B) {
	pair := hashfn.DefaultPair()
	build := func(name string) baseline.LookupTable {
		switch name {
		case "single-hash":
			t, _ := baseline.NewSingleHash(pair.H1, 1<<13, 4, 13)
			return t
		case "cuckoo":
			t, _ := baseline.NewCuckoo(pair, 1<<13, 2, 13, 64)
			return t
		case "2-left":
			t, _ := baseline.NewDLeft([]hashfn.Func{pair.H1, pair.H2}, 1<<12, 4, 13)
			return t
		case "conventional-hashcam":
			cfg := hashcam.DefaultConfig()
			t, _ := baseline.NewConvHashCAM(cfg)
			return t
		default:
			cfg := hashcam.DefaultConfig()
			t, _ := baseline.NewProposed(cfg)
			return t
		}
	}
	keys := trafficgen.Keys(8000)
	for _, name := range []string{"proposed-hashcam", "conventional-hashcam", "single-hash", "2-left", "cuckoo"} {
		b.Run(name, func(b *testing.B) {
			tbl := build(name)
			for _, k := range keys {
				if _, err := tbl.Insert(k); err != nil {
					// Single-hash overflow at this load is expected for a
					// few keys; skip them.
					continue
				}
			}
			startProbes := tbl.Probes()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tbl.Lookup(keys[i%len(keys)])
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(tbl.Probes()-startProbes)/float64(b.N), "probes/op")
			}
		})
	}
}

// BenchmarkEngineParallelLookup drives the sharded engine with
// b.RunParallel across shard counts and backends: the scaling curve the
// paper realises in hardware with its two DDR3 channels, generalised to N
// software shards. On >=4 cores the multi-shard rows should clearly beat
// shards=1 (which serialises every goroutine on one mutex).
func BenchmarkEngineParallelLookup(b *testing.B) {
	shardCounts := []int{1, 2, 4, 8}
	if p := runtime.GOMAXPROCS(0); p > 8 {
		shardCounts = append(shardCounts, p)
	}
	keys := trafficgen.Keys(1 << 15)
	for _, backend := range []string{"hashcam", "cuckoo", "dleft"} {
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("%s/shards=%d", backend, shards), func(b *testing.B) {
				s, err := table.NewSharded(backend, shards, table.Config{Capacity: 1 << 16}, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range keys {
					if _, err := s.Insert(k); err != nil {
						b.Fatal(err)
					}
				}
				var ctr atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := ctr.Add(1) * 0x9e3779b9 // de-correlate goroutine walk starts
					for pb.Next() {
						s.Lookup(keys[i%uint64(len(keys))])
						i++
					}
				})
			})
		}
	}
}

// BenchmarkEngineParallelReadHeavy is the acceptance benchmark of the
// single-hash-pass hot path (PR 2): the read-heavy mix — 90% scalar
// lookups of resident flows, 10% insert+delete churn — driven by at
// least 8 concurrent workers regardless of GOMAXPROCS. Steady state
// performs zero heap allocations per operation (pooled key scratch +
// precomputed KeyHashes + RLock'd shards); the bound is enforced by
// TestEngineScalarLookupZeroAllocs and visible in -benchmem output.
func BenchmarkEngineParallelReadHeavy(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := flowproc.NewEngine(flowproc.EngineConfig{
				Backend: "hashcam", Shards: shards, Capacity: 1 << 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			resident := make([]flowproc.FiveTuple, 1<<14)
			for i := range resident {
				resident[i] = trafficgen.Flow(uint64(i))
			}
			if _, err := eng.InsertBatch(resident); err != nil {
				b.Fatal(err)
			}
			// RunParallel spawns parallelism×GOMAXPROCS goroutines; pin the
			// worker count to >= 8 so the lock-contention profile is the
			// same on small CI boxes as on many-core hosts.
			if p := runtime.GOMAXPROCS(0); p < 8 {
				b.SetParallelism((8 + p - 1) / p)
			}
			b.ReportAllocs()
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := ctr.Add(1) * 0x9e3779b9
				for pb.Next() {
					switch i % 10 {
					case 0:
						ft := trafficgen.Flow(1<<40 + i)
						if _, err := eng.Insert(ft); err == nil {
							eng.Delete(ft)
						}
					default:
						eng.Lookup(resident[i%uint64(len(resident))])
					}
					i++
				}
			})
		})
	}
}

// BenchmarkEngineParallelBatchLookup is the zero-allocation batched read
// path: LookupBatchInto with per-goroutine reused buffers over resident
// flows. Alloc bound: 0 allocs/op in steady state for any batch size
// (enforced by TestEngineLookupBatchIntoZeroAllocs) — every structure on
// the path (key buffer, KeyHashes, shard plan, results) is pooled or
// caller-supplied.
func BenchmarkEngineParallelBatchLookup(b *testing.B) {
	const batchSize = 256
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := flowproc.NewEngine(flowproc.EngineConfig{
				Backend: "hashcam", Shards: shards, Capacity: 1 << 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			resident := make([]flowproc.FiveTuple, 1<<14)
			for i := range resident {
				resident[i] = trafficgen.Flow(uint64(i))
			}
			if _, err := eng.InsertBatch(resident); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ids := make([]uint64, batchSize)
				hits := make([]bool, batchSize)
				start := int(ctr.Add(1)*batchSize) % (len(resident) - batchSize)
				for pb.Next() {
					eng.LookupBatchInto(resident[start:start+batchSize], ids, hits)
				}
			})
			b.StopTimer()
			// One batched call is batchSize lookups; report per-lookup cost.
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchSize, "ns/lookup")
		})
	}
}

// BenchmarkEngineParallelMixed is the read-mostly update mix (90% lookup,
// 10% insert/delete churn) across shard counts on the public Engine API.
// Steady state: 0 allocs/op (see BenchmarkEngineParallelReadHeavy).
func BenchmarkEngineParallelMixed(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := flowproc.NewEngine(flowproc.EngineConfig{
				Backend: "hashcam", Shards: shards, Capacity: 1 << 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			resident := make([]flowproc.FiveTuple, 1<<14)
			for i := range resident {
				resident[i] = trafficgen.Flow(uint64(i))
			}
			if _, err := eng.InsertBatch(resident); err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := ctr.Add(1) * 0x9e3779b9
				for pb.Next() {
					switch i % 10 {
					case 0:
						ft := trafficgen.Flow(1<<40 + i)
						if _, err := eng.Insert(ft); err == nil {
							eng.Delete(ft)
						}
					default:
						eng.Lookup(resident[i%uint64(len(resident))])
					}
					i++
				}
			})
		})
	}
}

// BenchmarkEngineBatchVsScalar quantifies what shard-grouped batching
// saves over per-key calls at equal work.
func BenchmarkEngineBatchVsScalar(b *testing.B) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 8, Capacity: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]flowproc.FiveTuple, 256)
	for i := range batch {
		batch[i] = trafficgen.Flow(uint64(i))
	}
	if _, err := eng.InsertBatch(batch); err != nil {
		b.Fatal(err)
	}
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.Lookup(batch[i%len(batch)])
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i += len(batch) {
			eng.LookupBatch(batch)
		}
	})
}

// BenchmarkEngineWriterBatch measures the writer pipeline: one round is a
// 256-flow InsertBatch(Into) followed by a full DeleteBatch(Into) — the
// write-heavy churn cycle. "alloc" is the slice-returning PR-2 form;
// "into" reuses caller-owned ids/errs/oks buffers and runs
// allocation-free.
func BenchmarkEngineWriterBatch(b *testing.B) {
	eng, err := flowproc.NewEngine(flowproc.EngineConfig{
		Backend: "hashcam", Shards: 8, Capacity: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]flowproc.FiveTuple, 256)
	for i := range batch {
		batch[i] = trafficgen.Flow(uint64(i))
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i += 2 * len(batch) {
			if _, err := eng.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			eng.DeleteBatch(batch)
		}
	})
	b.Run("into", func(b *testing.B) {
		b.ReportAllocs()
		ids := make([]uint64, len(batch))
		errs := make([]error, len(batch))
		oks := make([]bool, len(batch))
		for i := 0; i < b.N; i += 2 * len(batch) {
			eng.InsertBatchInto(batch, ids, errs)
			for j, e := range errs {
				if e != nil {
					b.Fatalf("insert %d: %v", j, e)
				}
			}
			eng.DeleteBatchInto(batch, oks)
		}
	})
}

func BenchmarkHashFunctions(b *testing.B) {
	key := make([]byte, 13)
	for _, f := range hashfn.All() {
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				binary.LittleEndian.PutUint64(key, uint64(i))
				_ = f.Hash(key)
			}
		})
	}
}

func BenchmarkBloomFilter(b *testing.B) {
	f, err := bloom.NewForCapacity(100000, 0.01, hashfn.DefaultPair())
	if err != nil {
		b.Fatal(err)
	}
	keys := trafficgen.Keys(100000)
	for _, k := range keys {
		f.Add(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(keys[i%len(keys)])
	}
}

func BenchmarkUntimedHashCAMInsert(b *testing.B) {
	cfg := hashcam.DefaultConfig()
	cfg.Buckets = 1 << 16
	keys := trafficgen.Keys(200000)
	b.ResetTimer()
	var tbl *hashcam.Table
	for i := 0; i < b.N; i++ {
		if i%200000 == 0 {
			var err error
			tbl, err = hashcam.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
		}
		if _, err := tbl.Insert(keys[i%200000]); err != nil {
			b.Fatal(err)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ',' || r == '%':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return string(out)
}
